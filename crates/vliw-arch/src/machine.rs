//! Machine configurations (Table 1 of the paper).
//!
//! Three presets are evaluated in the paper, all with the same *total* resources
//! (12-way issue, 64 architectural registers):
//!
//! | configuration | clusters | FUs per cluster (int/fp/mem) | registers per cluster |
//! |---------------|----------|------------------------------|-----------------------|
//! | unified       | 1        | 4 / 4 / 4                    | 64                    |
//! | 2-cluster     | 2        | 2 / 2 / 2                    | 32                    |
//! | 4-cluster     | 4        | 1 / 1 / 1                    | 16                    |
//!
//! The clustered configurations additionally have 1 or 2 shared buses with a latency of
//! 1, 2 or 4 cycles.

use crate::latency::LatencyModel;
use crate::op::{FuKind, OpClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a cluster within a machine (0-based).
pub type ClusterId = usize;

/// Description of one (homogeneous) cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of functional units of each kind, indexed by [`FuKind::index`].
    pub fus: [usize; 3],
    /// Number of registers in the local register file.
    pub registers: usize,
}

impl ClusterConfig {
    /// A cluster with `int`/`fp`/`mem` functional units and `registers` registers.
    pub fn new(int: usize, fp: usize, mem: usize, registers: usize) -> Self {
        Self {
            fus: [int, fp, mem],
            registers,
        }
    }

    /// Number of functional units of the given kind.
    #[inline]
    pub fn fu_count(&self, kind: FuKind) -> usize {
        self.fus[kind.index()]
    }

    /// Total number of functional units (the issue width of the cluster).
    #[inline]
    pub fn issue_width(&self) -> usize {
        self.fus.iter().sum()
    }
}

/// Description of the inter-cluster communication buses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Number of buses shared by all clusters.
    pub count: usize,
    /// Latency, in cycles, of one transfer.  A transfer occupies its bus for the whole
    /// latency (the bus behaves as another reservation-table resource).
    pub latency: u32,
}

impl BusConfig {
    /// `count` buses of `latency` cycles each.
    pub fn new(count: usize, latency: u32) -> Self {
        Self {
            count,
            latency: latency.max(1),
        }
    }

    /// The bus configuration of a unified machine: no buses are needed because every
    /// functional unit reads the single register file.
    pub fn none() -> Self {
        Self {
            count: 0,
            latency: 1,
        }
    }
}

/// A complete clustered VLIW machine description.
///
/// All clusters are homogeneous, as in the paper (Section 3); heterogeneous machines
/// could be expressed by generalising `cluster` to a `Vec<ClusterConfig>` but none of
/// the reproduced experiments needs that.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable name (used in experiment reports).
    pub name: String,
    /// Number of clusters.
    pub n_clusters: usize,
    /// Per-cluster resources.
    pub cluster: ClusterConfig,
    /// Inter-cluster bus configuration.
    pub buses: BusConfig,
    /// Operation latencies.
    pub latencies: LatencyModel,
}

impl MachineConfig {
    /// Generic constructor.
    pub fn new(
        name: impl Into<String>,
        n_clusters: usize,
        cluster: ClusterConfig,
        buses: BusConfig,
        latencies: LatencyModel,
    ) -> Self {
        assert!(n_clusters >= 1, "a machine needs at least one cluster");
        Self {
            name: name.into(),
            n_clusters,
            cluster,
            buses,
            latencies,
        }
    }

    /// The *unified* baseline of Table 1: a single cluster with 4 functional units of
    /// each kind and a 64-entry register file.  No buses are needed.
    pub fn unified() -> Self {
        Self::new(
            "unified",
            1,
            ClusterConfig::new(4, 4, 4, 64),
            BusConfig::none(),
            LatencyModel::table1(),
        )
    }

    /// A clustered configuration of Table 1.
    ///
    /// `n_clusters` must be 2 or 4 to match the paper presets (other values are
    /// accepted and scale the per-cluster resources so that the machine keeps 12 total
    /// functional units and 64 total registers when possible).
    pub fn clustered(n_clusters: usize, n_buses: usize, bus_latency: u32) -> Self {
        assert!(n_clusters >= 1);
        let per = |total: usize| (total / n_clusters).max(1);
        let cluster = ClusterConfig::new(per(4), per(4), per(4), per(64));
        Self::new(
            format!("{n_clusters}-cluster/{n_buses}-bus/L{bus_latency}"),
            n_clusters,
            cluster,
            BusConfig::new(n_buses, bus_latency),
            LatencyModel::table1(),
        )
    }

    /// The 2-cluster preset of Table 1 (2/2/2 FUs and 32 registers per cluster).
    pub fn two_cluster(n_buses: usize, bus_latency: u32) -> Self {
        Self::clustered(2, n_buses, bus_latency)
    }

    /// The 4-cluster preset of Table 1 (1/1/1 FUs and 16 registers per cluster).
    pub fn four_cluster(n_buses: usize, bus_latency: u32) -> Self {
        Self::clustered(4, n_buses, bus_latency)
    }

    /// A unified machine with the *same total resources* as `self` (used as the
    /// reference when computing relative IPC).  The unified counterpart has a single
    /// cluster holding every functional unit and every register, and needs no buses.
    pub fn unified_counterpart(&self) -> Self {
        let c = &self.cluster;
        Self::new(
            format!("{}-unified-counterpart", self.name),
            1,
            ClusterConfig::new(
                c.fu_count(FuKind::Int) * self.n_clusters,
                c.fu_count(FuKind::Fp) * self.n_clusters,
                c.fu_count(FuKind::Mem) * self.n_clusters,
                c.registers * self.n_clusters,
            ),
            BusConfig::none(),
            self.latencies.clone(),
        )
    }

    /// Whether this machine has more than one cluster.
    #[inline]
    pub fn is_clustered(&self) -> bool {
        self.n_clusters > 1
    }

    /// Check that the configuration describes a machine every scheduler in the
    /// workspace can target.  Returns the first problem found, or `Ok(())`.
    ///
    /// The invariants are exactly the assumptions baked into the scheduling stack:
    ///
    /// * at least one cluster;
    /// * at least one functional unit of **every** kind per cluster (`ResMII` is
    ///   undefined for a machine that cannot execute an operation class at all, and
    ///   the corpora exercise all three kinds);
    /// * at least one register per cluster (the `MaxLive` check would reject every
    ///   placement otherwise);
    /// * clustered machines need at least one bus (a value could never cross
    ///   clusters without one), and every bus a latency of at least one cycle.
    ///
    /// Hand-written configurations are free to break these rules for targeted tests
    /// (e.g. the Figure-7 machine has no FP units); generated configurations — the
    /// fuzzing campaigns of `vliw-verify` sample this space — must satisfy them.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_clusters == 0 {
            return Err("machine has no clusters".to_string());
        }
        for kind in crate::op::FuKind::ALL {
            if self.cluster.fu_count(kind) == 0 {
                return Err(format!("cluster has no {kind} functional units"));
            }
        }
        if self.cluster.registers == 0 {
            return Err("cluster has an empty register file".to_string());
        }
        if self.is_clustered() && self.buses.count == 0 {
            return Err(format!(
                "{} clusters but no inter-cluster bus",
                self.n_clusters
            ));
        }
        if self.buses.count > 0 && self.buses.latency == 0 {
            return Err("bus latency of zero cycles".to_string());
        }
        Ok(())
    }

    /// Total number of functional units of `kind` across all clusters.
    #[inline]
    pub fn total_fus(&self, kind: FuKind) -> usize {
        self.cluster.fu_count(kind) * self.n_clusters
    }

    /// Total issue width (functional units of all kinds, all clusters).
    #[inline]
    pub fn total_issue_width(&self) -> usize {
        self.cluster.issue_width() * self.n_clusters
    }

    /// Total number of registers across all clusters.
    #[inline]
    pub fn total_registers(&self) -> usize {
        self.cluster.registers * self.n_clusters
    }

    /// Result latency of an operation class on this machine.
    #[inline]
    pub fn latency(&self, class: OpClass) -> u32 {
        self.latencies.latency(class)
    }

    /// Iterator over cluster ids `0..n_clusters`.
    pub fn clusters(&self) -> impl Iterator<Item = ClusterId> {
        0..self.n_clusters
    }

    /// Number of read/write ports of one local register file, following the paper's
    /// port model: 2 read + 1 write port per functional unit, plus 1 read + 1 write
    /// port per bus (for sending to / receiving from the bus).
    pub fn register_file_ports(&self) -> (usize, usize) {
        let fu = self.cluster.issue_width();
        let bus = self.buses.count;
        (2 * fu + bus, fu + bus)
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cluster(s) x [{} int, {} fp, {} mem, {} regs]",
            self.name,
            self.n_clusters,
            self.cluster.fu_count(FuKind::Int),
            self.cluster.fu_count(FuKind::Fp),
            self.cluster.fu_count(FuKind::Mem),
            self.cluster.registers,
        )?;
        if self.buses.count > 0 {
            write!(
                f,
                ", {} bus(es) of {} cycle(s)",
                self.buses.count, self.buses.latency
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_preset_matches_table1() {
        let m = MachineConfig::unified();
        assert_eq!(m.n_clusters, 1);
        assert_eq!(m.total_fus(FuKind::Int), 4);
        assert_eq!(m.total_fus(FuKind::Fp), 4);
        assert_eq!(m.total_fus(FuKind::Mem), 4);
        assert_eq!(m.total_registers(), 64);
        assert_eq!(m.total_issue_width(), 12);
        assert_eq!(m.buses.count, 0);
        assert!(!m.is_clustered());
    }

    #[test]
    fn two_cluster_preset_matches_table1() {
        let m = MachineConfig::two_cluster(1, 1);
        assert_eq!(m.n_clusters, 2);
        assert_eq!(m.cluster.fu_count(FuKind::Int), 2);
        assert_eq!(m.cluster.registers, 32);
        assert_eq!(m.total_issue_width(), 12);
        assert_eq!(m.total_registers(), 64);
        assert!(m.is_clustered());
    }

    #[test]
    fn four_cluster_preset_matches_table1() {
        let m = MachineConfig::four_cluster(2, 2);
        assert_eq!(m.n_clusters, 4);
        assert_eq!(m.cluster.fu_count(FuKind::Fp), 1);
        assert_eq!(m.cluster.registers, 16);
        assert_eq!(m.total_issue_width(), 12);
        assert_eq!(m.total_registers(), 64);
        assert_eq!(m.buses.count, 2);
        assert_eq!(m.buses.latency, 2);
    }

    #[test]
    fn unified_counterpart_preserves_totals() {
        for m in [
            MachineConfig::two_cluster(1, 1),
            MachineConfig::four_cluster(2, 4),
        ] {
            let u = m.unified_counterpart();
            assert_eq!(u.n_clusters, 1);
            assert_eq!(u.total_issue_width(), m.total_issue_width());
            assert_eq!(u.total_registers(), m.total_registers());
            assert_eq!(u.buses.count, 0);
        }
    }

    #[test]
    fn register_file_ports_follow_fu_and_bus_counts() {
        // Unified: 12 FUs, no buses -> 24 read, 12 write.
        assert_eq!(MachineConfig::unified().register_file_ports(), (24, 12));
        // 4-cluster with 2 buses: 3 FUs per cluster -> 6+2 read, 3+2 write.
        assert_eq!(
            MachineConfig::four_cluster(2, 1).register_file_ports(),
            (8, 5)
        );
    }

    #[test]
    fn bus_latency_clamped_to_one() {
        let b = BusConfig::new(1, 0);
        assert_eq!(b.latency, 1);
    }

    #[test]
    fn display_mentions_buses_only_when_present() {
        let u = MachineConfig::unified().to_string();
        assert!(!u.contains("bus(es)"));
        let c = MachineConfig::two_cluster(2, 1).to_string();
        assert!(c.contains("2 bus(es)"));
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_is_rejected() {
        let _ = MachineConfig::new(
            "bad",
            0,
            ClusterConfig::new(1, 1, 1, 16),
            BusConfig::none(),
            LatencyModel::unit(),
        );
    }
}
