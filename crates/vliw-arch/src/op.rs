//! Operation repertoire of the modelled VLIW machine.
//!
//! The paper partitions the functional units into three kinds — *integer*, *floating
//! point* and *memory* (Table 1).  Every operation class executed by a loop body maps
//! onto exactly one of those kinds; the mapping (and the per-class latencies, see
//! [`crate::latency::LatencyModel`]) is what the dependence graphs and the schedulers
//! consume.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of functional unit an operation executes on.
///
/// The clustered configurations of the paper give every cluster the same number of
/// units of each kind (e.g. the 4-cluster machine has one unit of each kind per
/// cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FuKind {
    /// Integer ALU / branch unit.
    Int,
    /// Floating-point arithmetic unit.
    Fp,
    /// Memory (load/store) unit.
    Mem,
}

impl FuKind {
    /// All functional-unit kinds, in a fixed order used when enumerating resources.
    pub const ALL: [FuKind; 3] = [FuKind::Int, FuKind::Fp, FuKind::Mem];

    /// A stable index (0..3) for this kind, usable to index per-kind arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FuKind::Int => 0,
            FuKind::Fp => 1,
            FuKind::Mem => 2,
        }
    }

    /// Short human-readable mnemonic (`INT`, `FP`, `MEM`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            FuKind::Int => "INT",
            FuKind::Fp => "FP",
            FuKind::Mem => "MEM",
        }
    }
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Operation classes appearing in the innermost loops of the SPECfp95-like workloads.
///
/// The set is deliberately small: it is the classes a numerical innermost loop is made
/// of.  Each class maps to one [`FuKind`] and has a latency defined by the
/// [`crate::latency::LatencyModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer add/sub/logical/compare (also used for address arithmetic).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Floating-point add/sub/convert/compare.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide.
    FpDiv,
    /// Floating-point square root.
    FpSqrt,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Loop-closing branch / induction update handled by the integer unit.
    Branch,
    /// Register-to-register copy (used e.g. when materialising communications in a
    /// unified machine, or for modelling explicit moves).
    Copy,
}

impl OpClass {
    /// All operation classes in a fixed order.
    pub const ALL: [OpClass; 10] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::FpSqrt,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Copy,
    ];

    /// The functional-unit kind this class executes on.
    #[inline]
    pub fn fu_kind(self) -> FuKind {
        match self {
            OpClass::IntAlu | OpClass::IntMul | OpClass::Branch | OpClass::Copy => FuKind::Int,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt => FuKind::Fp,
            OpClass::Load | OpClass::Store => FuKind::Mem,
        }
    }

    /// Whether this operation produces a register value that later operations may read.
    ///
    /// Stores and branches do not define a register; everything else does.
    #[inline]
    pub fn defines_value(self) -> bool {
        !matches!(self, OpClass::Store | OpClass::Branch)
    }

    /// Whether the operation accesses memory.
    #[inline]
    pub fn is_memory(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether the operation is a floating-point arithmetic operation.
    #[inline]
    pub fn is_fp(self) -> bool {
        self.fu_kind() == FuKind::Fp
    }

    /// Short mnemonic used in schedules and DOT dumps.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpClass::IntAlu => "ialu",
            OpClass::IntMul => "imul",
            OpClass::FpAdd => "fadd",
            OpClass::FpMul => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::FpSqrt => "fsqrt",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "br",
            OpClass::Copy => "copy",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A concrete operation instance as placed in a VLIW instruction slot.
///
/// The scheduler works on dependence-graph nodes; `Operation` is the *emitted* form
/// that the simulator executes and the code-size model counts.  `id` refers back to the
/// dependence-graph node that produced it (several emitted operations may share an id
/// after unrolling or prologue/epilogue expansion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Operation {
    /// The dependence-graph node this emitted operation corresponds to.
    pub node: u32,
    /// Operation class.
    pub class: OpClass,
    /// The software-pipeline stage this operation belongs to (0 = first stage).
    pub stage: u32,
}

impl Operation {
    /// Create an operation for `node` of the given `class` in pipeline `stage`.
    pub fn new(node: u32, class: OpClass, stage: u32) -> Self {
        Self { node, class, stage }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}@s{}", self.class, self.node, self.stage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu_kind_indices_are_distinct_and_dense() {
        let mut seen = [false; 3];
        for kind in FuKind::ALL {
            assert!(!seen[kind.index()], "duplicate index for {kind}");
            seen[kind.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn every_op_class_maps_to_a_kind() {
        for class in OpClass::ALL {
            // The mapping must be total and consistent with `is_memory`/`is_fp`.
            let kind = class.fu_kind();
            if class.is_memory() {
                assert_eq!(kind, FuKind::Mem);
            }
            if class.is_fp() {
                assert_eq!(kind, FuKind::Fp);
            }
        }
    }

    #[test]
    fn stores_and_branches_do_not_define_values() {
        assert!(!OpClass::Store.defines_value());
        assert!(!OpClass::Branch.defines_value());
        assert!(OpClass::Load.defines_value());
        assert!(OpClass::FpMul.defines_value());
        assert!(OpClass::Copy.defines_value());
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<_> = OpClass::ALL.iter().map(|c| c.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OpClass::ALL.len());
    }

    #[test]
    fn operation_display_is_compact() {
        let op = Operation::new(7, OpClass::FpMul, 2);
        assert_eq!(op.to_string(), "fmul#7@s2");
    }

    #[test]
    fn serde_round_trip() {
        let op = Operation::new(3, OpClass::Load, 1);
        let json = serde_json::to_string(&op).unwrap();
        let back: Operation = serde_json::from_str(&json).unwrap();
        assert_eq!(op, back);
    }
}
