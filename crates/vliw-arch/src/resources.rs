//! Enumeration of schedulable resources.
//!
//! Modulo scheduling reserves *resource slots*: one row of the reservation table per
//! functional-unit instance and per bus, one column per cycle of the initiation
//! interval.  [`ResourcePool`] assigns a dense, stable [`ResourceIndex`] to every such
//! row for a given [`MachineConfig`], so reservation tables can be plain vectors.
//!
//! The paper treats each bus exactly like another functional unit of the reservation
//! table ("a bus is considered by the scheduling algorithm as another functional unit
//! in the reservation table", Section 3); the pool therefore exposes buses as ordinary
//! rows, distinguished only by their [`ResourceKind`].

use crate::machine::{ClusterId, MachineConfig};
use crate::op::FuKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense index of a resource row within a [`ResourcePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceIndex(pub usize);

impl fmt::Display for ResourceIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// What a resource row represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// The `unit`-th functional unit of kind `kind` in cluster `cluster`.
    Fu {
        /// Owning cluster.
        cluster: ClusterId,
        /// Functional-unit kind.
        kind: FuKind,
        /// Instance number within the cluster (0-based).
        unit: usize,
    },
    /// The `bus`-th shared inter-cluster bus.
    Bus {
        /// Bus number (0-based).
        bus: usize,
    },
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Fu {
                cluster,
                kind,
                unit,
            } => {
                write!(f, "c{cluster}.{kind}{unit}")
            }
            ResourceKind::Bus { bus } => write!(f, "bus{bus}"),
        }
    }
}

/// The set of resource rows of a machine, with dense indices.
///
/// Row layout (stable, relied upon by tests): all functional units of cluster 0 (in
/// [`FuKind::ALL`] order, instances in order), then cluster 1, …, and finally the
/// buses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourcePool {
    rows: Vec<ResourceKind>,
    /// `fu_base[cluster][kind]` = first row of that (cluster, kind) group.
    fu_base: Vec<[usize; 3]>,
    /// Number of FUs of each kind per cluster.
    fu_count: [usize; 3],
    bus_base: usize,
    n_buses: usize,
}

impl ResourcePool {
    /// Build the resource pool of `machine`.
    pub fn new(machine: &MachineConfig) -> Self {
        let mut rows = Vec::new();
        let mut fu_base = Vec::with_capacity(machine.n_clusters);
        let mut fu_count = [0usize; 3];
        for kind in FuKind::ALL {
            fu_count[kind.index()] = machine.cluster.fu_count(kind);
        }
        for cluster in 0..machine.n_clusters {
            let mut bases = [0usize; 3];
            for kind in FuKind::ALL {
                bases[kind.index()] = rows.len();
                for unit in 0..machine.cluster.fu_count(kind) {
                    rows.push(ResourceKind::Fu {
                        cluster,
                        kind,
                        unit,
                    });
                }
            }
            fu_base.push(bases);
        }
        let bus_base = rows.len();
        for bus in 0..machine.buses.count {
            rows.push(ResourceKind::Bus { bus });
        }
        Self {
            rows,
            fu_base,
            fu_count,
            bus_base,
            n_buses: machine.buses.count,
        }
    }

    /// Total number of resource rows (functional units + buses).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the pool has no rows (never true for a valid machine).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// What row `index` represents.
    #[inline]
    pub fn kind(&self, index: ResourceIndex) -> ResourceKind {
        self.rows[index.0]
    }

    /// All rows, in index order.
    pub fn rows(&self) -> impl Iterator<Item = (ResourceIndex, ResourceKind)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, &k)| (ResourceIndex(i), k))
    }

    /// The rows of the functional units of `kind` in `cluster`.
    pub fn fus(&self, cluster: ClusterId, kind: FuKind) -> impl Iterator<Item = ResourceIndex> {
        let base = self.fu_base[cluster][kind.index()];
        let count = self.fu_count[kind.index()];
        (base..base + count).map(ResourceIndex)
    }

    /// Number of functional units of `kind` in each cluster.
    #[inline]
    pub fn fu_count(&self, kind: FuKind) -> usize {
        self.fu_count[kind.index()]
    }

    /// The rows of the shared buses.
    pub fn buses(&self) -> impl Iterator<Item = ResourceIndex> {
        (self.bus_base..self.bus_base + self.n_buses).map(ResourceIndex)
    }

    /// Number of shared buses.
    #[inline]
    pub fn bus_count(&self) -> usize {
        self.n_buses
    }

    /// The cluster a row belongs to, if it is a functional unit.
    pub fn cluster_of(&self, index: ResourceIndex) -> Option<ClusterId> {
        match self.kind(index) {
            ResourceKind::Fu { cluster, .. } => Some(cluster),
            ResourceKind::Bus { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    #[test]
    fn unified_pool_has_twelve_fus_and_no_buses() {
        let pool = ResourcePool::new(&MachineConfig::unified());
        assert_eq!(pool.len(), 12);
        assert_eq!(pool.bus_count(), 0);
        assert_eq!(pool.buses().count(), 0);
        assert_eq!(pool.fus(0, FuKind::Int).count(), 4);
        assert_eq!(pool.fus(0, FuKind::Fp).count(), 4);
        assert_eq!(pool.fus(0, FuKind::Mem).count(), 4);
    }

    #[test]
    fn four_cluster_pool_layout() {
        let machine = MachineConfig::four_cluster(2, 1);
        let pool = ResourcePool::new(&machine);
        // 4 clusters x 3 FUs + 2 buses
        assert_eq!(pool.len(), 14);
        assert_eq!(pool.bus_count(), 2);
        // Every FU row maps back to its cluster.
        for cluster in machine.clusters() {
            for kind in FuKind::ALL {
                for idx in pool.fus(cluster, kind) {
                    assert_eq!(pool.cluster_of(idx), Some(cluster));
                    match pool.kind(idx) {
                        ResourceKind::Fu {
                            cluster: c,
                            kind: k,
                            ..
                        } => {
                            assert_eq!(c, cluster);
                            assert_eq!(k, kind);
                        }
                        other => panic!("expected FU row, got {other}"),
                    }
                }
            }
        }
        // Bus rows are at the end and have no cluster.
        for idx in pool.buses() {
            assert_eq!(pool.cluster_of(idx), None);
        }
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let pool = ResourcePool::new(&MachineConfig::two_cluster(2, 2));
        let mut seen = vec![false; pool.len()];
        for (idx, _) in pool.rows() {
            assert!(!seen[idx.0]);
            seen[idx.0] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_of_rows_is_readable() {
        let pool = ResourcePool::new(&MachineConfig::two_cluster(1, 1));
        let names: Vec<String> = pool.rows().map(|(_, k)| k.to_string()).collect();
        assert!(names.contains(&"c0.INT0".to_string()));
        assert!(names.contains(&"c1.MEM1".to_string()));
        assert!(names.contains(&"bus0".to_string()));
    }
}
