//! Seeded random sampling of machine configurations.
//!
//! The paper evaluates a fixed table of machines (Table 1 plus bus variants); the
//! verification campaigns of `vliw-verify` instead explore a *space* of clustered
//! VLIW machines — cluster counts, functional-unit mixes, register-file sizes, bus
//! counts and latencies, and (optionally) perturbed operation latencies.  This module
//! defines that space ([`MachineSpace`]) and a deterministic sampler over it
//! ([`MachineSampler`]): the same seed always yields the same sequence of
//! configurations, so any failing fuzz case can be reproduced from its seed alone.
//!
//! Every sampled configuration satisfies [`MachineConfig::validate`] by
//! construction — the sampler only draws from the valid region (at least one
//! functional unit of each kind per cluster, at least one bus on clustered
//! machines, non-empty register files).

use crate::latency::LatencyModel;
use crate::machine::{BusConfig, ClusterConfig, MachineConfig};
use crate::op::OpClass;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The space of machine configurations a [`MachineSampler`] draws from.
///
/// All bounds are inclusive.  The default space brackets the paper's Table 1 (which
/// sits at 1–4 clusters × 1–4 FUs of each kind × 16–64 registers × 1–2 buses of
/// latency 1–4) and extends it moderately in every direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpace {
    /// Candidate cluster counts.
    pub clusters: Vec<usize>,
    /// Per-cluster functional units of each kind, `min..=max` (min must be ≥ 1).
    pub fus_per_kind: (usize, usize),
    /// Candidate per-cluster register-file sizes.
    pub registers: Vec<usize>,
    /// Bus count on clustered machines, `min..=max` (min must be ≥ 1).
    pub buses: (usize, usize),
    /// Bus latency in cycles, `min..=max` (min must be ≥ 1).
    pub bus_latency: (u32, u32),
    /// Probability of perturbing the Table-1 latency model (longer loads, slower FP)
    /// instead of using it verbatim; 0 disables latency fuzzing.
    pub latency_fuzz_prob: f64,
}

impl Default for MachineSpace {
    fn default() -> Self {
        Self {
            clusters: vec![1, 2, 3, 4, 6],
            fus_per_kind: (1, 4),
            registers: vec![12, 16, 24, 32, 48, 64],
            buses: (1, 3),
            bus_latency: (1, 4),
            latency_fuzz_prob: 0.25,
        }
    }
}

impl MachineSpace {
    /// A narrow space containing only the paper's Table-1 presets and their bus
    /// variants (useful for quick smoke campaigns).
    pub fn table1() -> Self {
        Self {
            clusters: vec![1, 2, 4],
            fus_per_kind: (1, 4),
            registers: vec![16, 32, 64],
            buses: (1, 2),
            bus_latency: (1, 4),
            latency_fuzz_prob: 0.0,
        }
    }
}

/// Deterministic generator of valid [`MachineConfig`]s from a [`MachineSpace`].
#[derive(Debug, Clone)]
pub struct MachineSampler {
    space: MachineSpace,
    rng: ChaCha8Rng,
}

impl MachineSampler {
    /// A sampler over `space`, seeded with `seed`.
    pub fn new(space: MachineSpace, seed: u64) -> Self {
        assert!(!space.clusters.is_empty(), "empty cluster-count space");
        assert!(!space.registers.is_empty(), "empty register-size space");
        assert!(
            space.fus_per_kind.0 >= 1,
            "clusters need at least one FU of each kind"
        );
        assert!(
            space.buses.0 >= 1,
            "clustered machines need at least one bus"
        );
        assert!(space.bus_latency.0 >= 1, "bus latency must be at least 1");
        Self {
            space,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The space this sampler draws from.
    pub fn space(&self) -> &MachineSpace {
        &self.space
    }

    /// Draw the next machine configuration.  The result always passes
    /// [`MachineConfig::validate`].
    pub fn sample(&mut self, name: impl Into<String>) -> MachineConfig {
        let s = &self.space;
        let n_clusters = s.clusters[self.rng.gen_range(0..s.clusters.len())];
        let fus = |rng: &mut ChaCha8Rng| rng.gen_range(s.fus_per_kind.0..=s.fus_per_kind.1);
        let cluster = ClusterConfig::new(
            fus(&mut self.rng),
            fus(&mut self.rng),
            fus(&mut self.rng),
            s.registers[self.rng.gen_range(0..s.registers.len())],
        );
        let buses = if n_clusters > 1 {
            BusConfig::new(
                self.rng.gen_range(s.buses.0..=s.buses.1),
                self.rng.gen_range(s.bus_latency.0..=s.bus_latency.1),
            )
        } else {
            BusConfig::none()
        };
        let latencies = if s.latency_fuzz_prob > 0.0 && self.rng.gen_bool(s.latency_fuzz_prob) {
            self.sample_latencies()
        } else {
            LatencyModel::table1()
        };
        let machine = MachineConfig::new(name, n_clusters, cluster, buses, latencies);
        debug_assert!(machine.validate().is_ok(), "sampler left the valid region");
        machine
    }

    /// A perturbed latency model: a handful of classes get their Table-1 latency
    /// scaled up (slower memory, slower FP) or clamped down to 1 (aggressive
    /// forwarding), which shifts RecMII/ResMII balances without leaving the regime
    /// the schedulers support.
    fn sample_latencies(&mut self) -> LatencyModel {
        let mut model = LatencyModel::table1();
        for class in [
            OpClass::Load,
            OpClass::FpAdd,
            OpClass::FpMul,
            OpClass::FpDiv,
            OpClass::IntAlu,
        ] {
            if self.rng.gen_bool(0.4) {
                let base = model.latency(class);
                let scaled = match self.rng.gen_range(0u32..3) {
                    0 => 1,
                    1 => base + self.rng.gen_range(1u32..=3),
                    _ => base * 2,
                };
                model.set(class, scaled.min(40));
            }
        }
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = MachineSampler::new(MachineSpace::default(), 99);
        let mut b = MachineSampler::new(MachineSpace::default(), 99);
        for i in 0..20 {
            assert_eq!(a.sample(format!("m{i}")), b.sample(format!("m{i}")));
        }
        let mut c = MachineSampler::new(MachineSpace::default(), 100);
        let differs = (0..20).any(|i| {
            MachineSampler::new(MachineSpace::default(), 99).sample(format!("m{i}"))
                != c.sample(format!("m{i}"))
        });
        assert!(differs, "different seeds produced identical streams");
    }

    #[test]
    fn every_sampled_machine_is_valid() {
        let mut sampler = MachineSampler::new(MachineSpace::default(), 7);
        for i in 0..200 {
            let m = sampler.sample(format!("fuzz{i}"));
            m.validate().unwrap_or_else(|e| panic!("{m}: {e}"));
            if m.is_clustered() {
                assert!(m.buses.count >= 1);
            } else {
                assert_eq!(m.buses.count, 0);
            }
        }
    }

    #[test]
    fn the_space_is_actually_explored() {
        let mut sampler = MachineSampler::new(MachineSpace::default(), 3);
        let mut clusters = BTreeSet::new();
        let mut regs = BTreeSet::new();
        let mut latencies = BTreeSet::new();
        for i in 0..300 {
            let m = sampler.sample(format!("m{i}"));
            clusters.insert(m.n_clusters);
            regs.insert(m.cluster.registers);
            latencies.insert(m.latency(OpClass::Load));
        }
        assert_eq!(
            clusters.into_iter().collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 6]
        );
        assert!(regs.len() >= 5, "register sizes under-covered");
        assert!(latencies.len() > 1, "latency fuzzing never triggered");
    }

    #[test]
    fn table1_space_stays_on_paper_presets() {
        let mut sampler = MachineSampler::new(MachineSpace::table1(), 11);
        for i in 0..100 {
            let m = sampler.sample(format!("m{i}"));
            assert!([1usize, 2, 4].contains(&m.n_clusters));
            assert_eq!(m.latencies, LatencyModel::table1());
        }
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let ok = MachineConfig::two_cluster(1, 1);
        assert!(ok.validate().is_ok());
        assert!(MachineConfig::unified().validate().is_ok());

        let mut no_bus = MachineConfig::two_cluster(1, 1);
        no_bus.buses = BusConfig::none();
        assert!(no_bus.validate().unwrap_err().contains("bus"));

        let mut no_fp = MachineConfig::unified();
        no_fp.cluster = ClusterConfig::new(4, 0, 4, 64);
        assert!(no_fp.validate().unwrap_err().contains("FP"));

        let mut no_regs = MachineConfig::unified();
        no_regs.cluster = ClusterConfig::new(4, 4, 4, 0);
        assert!(no_regs.validate().unwrap_err().contains("register"));
    }
}
