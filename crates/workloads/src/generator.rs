//! Synthetic innermost-loop generator.
//!
//! The generator builds dependence graphs that look like the innermost loops of dense
//! numerical Fortran codes:
//!
//! * an **induction/address strand**: one or two integer operations forming a
//!   distance-1 recurrence that feeds the memory operations (every real innermost loop
//!   has it);
//! * several **expression trees**: loads feeding a tree of FP multiplies/adds whose
//!   root is stored (or accumulated);
//! * optional **accumulators**: FP reductions that add a distance-1 self dependence;
//! * optional **cross-iteration flow dependences** (e.g. `x[i-1]` style reuse) with a
//!   configurable probability and distance distribution.
//!
//! All randomness comes from a caller-supplied seed through `rand_chacha`, so corpora
//! are fully reproducible; the profile parameters are exposed so the benches can sweep
//! them (e.g. "what if loops had many loop-carried dependences?").

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use vliw_arch::{LatencyModel, OpClass};
use vliw_ddg::{DepGraph, DepKind, NodeId};

/// Tunable structural statistics of a generated loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorProfile {
    /// Minimum number of expression trees (statements) per loop body.
    pub min_statements: usize,
    /// Maximum number of expression trees per loop body.
    pub max_statements: usize,
    /// Minimum number of leaf loads per statement.
    pub min_loads_per_stmt: usize,
    /// Maximum number of leaf loads per statement.
    pub max_loads_per_stmt: usize,
    /// Probability that a statement is a reduction (accumulator) instead of a store.
    pub reduction_prob: f64,
    /// Probability that a statement's result is also consumed by the next iteration
    /// (adds a distance-1/2 flow dependence into another statement).
    pub carried_dep_prob: f64,
    /// Probability that an individual FP node is a multiply (vs. an add).
    pub fp_mul_prob: f64,
    /// Probability that a statement contains a divide (rare, long latency).
    pub div_prob: f64,
    /// Range of the loop iteration count (inclusive).
    pub iterations: (u64, u64),
    /// Range of the per-loop invocation count (inclusive).
    pub invocations: (u64, u64),
}

impl Default for GeneratorProfile {
    fn default() -> Self {
        Self {
            min_statements: 1,
            max_statements: 4,
            min_loads_per_stmt: 1,
            max_loads_per_stmt: 4,
            reduction_prob: 0.2,
            carried_dep_prob: 0.12,
            fp_mul_prob: 0.5,
            div_prob: 0.04,
            iterations: (16, 512),
            invocations: (1, 400),
        }
    }
}

impl GeneratorProfile {
    /// Draw a randomized profile from `rng` — the profile space explored by the
    /// `vliw-verify` fuzzing campaigns.
    ///
    /// Where the per-benchmark SPECfp95 profiles each pin the structural statistics of
    /// one program, a fuzzed profile varies *all* of them at once: body sizes from
    /// 1-statement micro-loops to fpppp-sized straight-line bodies, recurrence
    /// densities from fully parallel to heavily carried, and occasional divide-heavy
    /// bodies that push RecMII far above ResMII.  Iteration counts are kept small
    /// (the verifier replays every iteration in the simulator) and invocation counts
    /// at 1 (invocation weighting is IPC bookkeeping, irrelevant to correctness).
    pub fn fuzz<R: Rng>(rng: &mut R) -> Self {
        let min_statements = rng.gen_range(1usize..=4);
        let max_statements = min_statements + rng.gen_range(0usize..=5);
        let min_loads = rng.gen_range(1usize..=3);
        let max_loads = min_loads + rng.gen_range(0usize..=5);
        let min_iter = rng.gen_range(5u64..=20);
        Self {
            min_statements,
            max_statements,
            min_loads_per_stmt: min_loads,
            max_loads_per_stmt: max_loads,
            reduction_prob: rng.gen_range(0.0..0.5),
            carried_dep_prob: rng.gen_range(0.0..0.6),
            fp_mul_prob: rng.gen_range(0.2..0.8),
            div_prob: rng.gen_range(0.0..0.15),
            iterations: (min_iter, min_iter + rng.gen_range(0u64..=40)),
            invocations: (1, 1),
        }
    }
}

/// Seeded generator of synthetic loop dependence graphs.
#[derive(Debug, Clone)]
pub struct LoopGenerator {
    profile: GeneratorProfile,
    latencies: LatencyModel,
    rng: ChaCha8Rng,
}

impl LoopGenerator {
    /// A generator using `profile`, seeded with `seed`.
    pub fn new(profile: GeneratorProfile, seed: u64) -> Self {
        Self {
            profile,
            latencies: LatencyModel::table1(),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Use `latencies` for the generated dependence edges instead of the Table-1
    /// defaults.  Edge latencies must match the latency model of the machine the
    /// loop is scheduled for — the fuzzing campaigns sample perturbed models, so
    /// their loops are generated with this builder.
    pub fn with_latencies(mut self, latencies: LatencyModel) -> Self {
        self.latencies = latencies;
        self
    }

    /// The profile used by this generator.
    pub fn profile(&self) -> &GeneratorProfile {
        &self.profile
    }

    /// Generate one loop named `name`.
    pub fn generate(&mut self, name: &str) -> DepGraph {
        let p = self.profile.clone();
        let mut g = DepGraph::new(name);
        g.iterations = self.rng.gen_range(p.iterations.0..=p.iterations.1);
        g.invocations = self.rng.gen_range(p.invocations.0..=p.invocations.1);

        // Induction / address strand.
        let induction = g.add_named_node(OpClass::IntAlu, Some("ind"));
        self.add_flow(&mut g, induction, induction, 1);

        let n_statements = self.rng.gen_range(p.min_statements..=p.max_statements);
        let mut statement_roots: Vec<NodeId> = Vec::with_capacity(n_statements);

        for s in 0..n_statements {
            let n_loads = self
                .rng
                .gen_range(p.min_loads_per_stmt..=p.max_loads_per_stmt);
            let mut frontier: Vec<NodeId> = Vec::with_capacity(n_loads);
            for l in 0..n_loads {
                let load = g.add_named_node(OpClass::Load, Some(format!("s{s}_ld{l}")));
                self.add_flow(&mut g, induction, load, 0);
                frontier.push(load);
            }
            // Occasionally reuse the result of a previous statement as an extra leaf.
            if !statement_roots.is_empty() && self.rng.gen_bool(0.3) {
                let idx = self.rng.gen_range(0..statement_roots.len());
                frontier.push(statement_roots[idx]);
            }

            // Reduce the frontier with a binary tree of FP operations.
            let mut tree_idx = 0usize;
            while frontier.len() > 1 {
                let a = frontier.remove(self.rng.gen_range(0..frontier.len()));
                let b = frontier.remove(self.rng.gen_range(0..frontier.len()));
                let class = if self.rng.gen_bool(p.div_prob) {
                    OpClass::FpDiv
                } else if self.rng.gen_bool(p.fp_mul_prob) {
                    OpClass::FpMul
                } else {
                    OpClass::FpAdd
                };
                let op = g.add_named_node(class, Some(format!("s{s}_op{tree_idx}")));
                tree_idx += 1;
                self.add_flow(&mut g, a, op, 0);
                self.add_flow(&mut g, b, op, 0);
                frontier.push(op);
            }
            let root = frontier.pop().expect("statement has at least one leaf");

            if self.rng.gen_bool(p.reduction_prob) {
                // Reduction: acc = acc + root.
                let acc = g.add_named_node(OpClass::FpAdd, Some(format!("s{s}_acc")));
                self.add_flow(&mut g, root, acc, 0);
                self.add_flow(&mut g, acc, acc, 1);
                statement_roots.push(acc);
            } else {
                let store = g.add_named_node(OpClass::Store, Some(format!("s{s}_st")));
                self.add_flow(&mut g, root, store, 0);
                self.add_flow(&mut g, induction, store, 0);
                statement_roots.push(root);
            }

            // Loop-carried reuse of this statement's value by a later statement or by
            // the next iteration's own tree.
            if self.rng.gen_bool(p.carried_dep_prob) {
                let distance = if self.rng.gen_bool(0.8) { 1 } else { 2 };
                let target = statement_roots[self.rng.gen_range(0..statement_roots.len())];
                if target != root || distance > 0 {
                    self.add_flow(&mut g, root, target, distance);
                }
            }
        }

        debug_assert!(g.validate().is_ok(), "generator produced an invalid graph");
        g
    }

    /// Generate `count` loops named `prefix_<i>`.
    pub fn generate_many(&mut self, prefix: &str, count: usize) -> Vec<DepGraph> {
        (0..count)
            .map(|i| self.generate(&format!("{prefix}_{i}")))
            .collect()
    }

    fn add_flow(&self, g: &mut DepGraph, src: NodeId, dst: NodeId, distance: u32) {
        let latency = self.latencies.latency(g.node(src).class);
        g.add_edge(src, dst, latency, distance, DepKind::Flow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::{FuKind, MachineConfig};
    use vliw_ddg::{mii, rec_mii};

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let mut a = LoopGenerator::new(GeneratorProfile::default(), 42);
        let mut b = LoopGenerator::new(GeneratorProfile::default(), 42);
        let ga = a.generate_many("x", 5);
        let gb = b.generate_many("x", 5);
        assert_eq!(ga, gb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = LoopGenerator::new(GeneratorProfile::default(), 1);
        let mut b = LoopGenerator::new(GeneratorProfile::default(), 2);
        assert_ne!(a.generate("x"), b.generate("x"));
    }

    #[test]
    fn generated_loops_are_valid_and_sized_reasonably() {
        let mut gen = LoopGenerator::new(GeneratorProfile::default(), 7);
        for g in gen.generate_many("loop", 50) {
            assert!(g.validate().is_ok());
            assert!(g.n_nodes() >= 3);
            assert!(
                g.n_nodes() <= 120,
                "unexpectedly large loop: {}",
                g.n_nodes()
            );
            assert!(g.iterations >= 16);
            assert!(g.invocations >= 1);
            // Every loop has the induction recurrence.
            assert!(g.loop_carried_edges() >= 1);
        }
    }

    #[test]
    fn op_mix_is_fp_and_memory_dominated() {
        let mut gen = LoopGenerator::new(GeneratorProfile::default(), 11);
        let loops = gen.generate_many("mix", 100);
        let mut counts = [0usize; 3];
        for g in &loops {
            let c = g.ops_per_fu_kind();
            for k in 0..3 {
                counts[k] += c[k];
            }
        }
        let int = counts[FuKind::Int.index()];
        let fp = counts[FuKind::Fp.index()];
        let mem = counts[FuKind::Mem.index()];
        assert!(fp + mem > 3 * int, "fp={fp} mem={mem} int={int}");
    }

    #[test]
    fn most_loops_schedule_at_low_ii_on_the_unified_machine() {
        // Sanity: the corpus must not be dominated by recurrence-bound loops, or the
        // clustering experiments would never stress the buses.
        let machine = MachineConfig::unified();
        let mut gen = LoopGenerator::new(GeneratorProfile::default(), 13);
        let loops = gen.generate_many("ii", 60);
        let low_rec = loops.iter().filter(|g| rec_mii(g) <= 4).count();
        assert!(low_rec * 2 > loops.len(), "too many recurrence-bound loops");
        for g in &loops {
            assert!(mii(g, &machine) >= 1);
        }
    }

    #[test]
    fn custom_latency_models_flow_into_the_edges() {
        use vliw_ddg::DepKind;
        let slow_loads = LatencyModel::with_overrides(&[(vliw_arch::OpClass::Load, 9)]);
        let mut gen =
            LoopGenerator::new(GeneratorProfile::default(), 21).with_latencies(slow_loads);
        let g = gen.generate("lat");
        let mut saw_load_edge = false;
        for e in g.edges().filter(|e| e.kind == DepKind::Flow) {
            if g.node(e.src).class == vliw_arch::OpClass::Load {
                assert_eq!(e.latency, 9, "load edge kept the default latency");
                saw_load_edge = true;
            }
        }
        assert!(saw_load_edge, "generated loop has no load edges");
    }

    #[test]
    fn fuzzed_profiles_are_wellformed_and_their_loops_valid() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        for i in 0..50 {
            let profile = GeneratorProfile::fuzz(&mut rng);
            assert!(profile.min_statements <= profile.max_statements);
            assert!(profile.min_loads_per_stmt <= profile.max_loads_per_stmt);
            assert!(profile.iterations.0 <= profile.iterations.1);
            assert!(profile.iterations.0 >= 5);
            let mut gen = LoopGenerator::new(profile, 1000 + i);
            for g in gen.generate_many("fuzz", 3) {
                assert!(g.validate().is_ok());
                assert!(g.n_nodes() >= 2);
            }
        }
    }

    #[test]
    fn fuzzed_profiles_vary_between_draws() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let a = GeneratorProfile::fuzz(&mut rng);
        let b = GeneratorProfile::fuzz(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn carried_dep_probability_increases_loop_carried_edges() {
        let low = GeneratorProfile {
            carried_dep_prob: 0.0,
            ..Default::default()
        };
        let high = GeneratorProfile {
            carried_dep_prob: 0.9,
            ..Default::default()
        };
        let count = |profile: GeneratorProfile| -> usize {
            let mut gen = LoopGenerator::new(profile, 3);
            gen.generate_many("c", 40)
                .iter()
                .map(vliw_ddg::DepGraph::loop_carried_edges)
                .sum()
        };
        assert!(count(high) > count(low));
    }
}
