//! Hand-written dependence graphs for well-known numerical kernels.
//!
//! These serve three purposes: they are the readable examples used in the `examples/`
//! binaries, they anchor the unit tests on loops whose MII and schedule quality can be
//! reasoned about by hand, and [`paper_example_loop`] reproduces the worked example of
//! Figure 7 of the paper.

use vliw_arch::{LatencyModel, OpClass};
use vliw_ddg::{DepGraph, GraphBuilder};

/// The worked example of Figure 7: six unit-latency operations `A…F` with two
/// loop-carried dependences closing a recurrence of latency 3 over distance 2.
///
/// On the two-cluster machine of the example (two general-purpose units per cluster,
/// one single-cycle bus) the non-unrolled loop cannot be scheduled at its MII of 2 and
/// needs II = 3, whereas the body unrolled by 2 schedules at its minimum II of 4 — the
/// communication latency is completely hidden.
pub fn paper_example_loop() -> DepGraph {
    GraphBuilder::new("figure7")
        .with_latencies(LatencyModel::unit())
        .iterations(100)
        .node("A", OpClass::IntAlu)
        .node("B", OpClass::IntAlu)
        .node("C", OpClass::IntAlu)
        .node("D", OpClass::IntAlu)
        .node("E", OpClass::IntAlu)
        .node("F", OpClass::IntAlu)
        .flow("A", "C")
        .flow("B", "C")
        .flow("C", "E")
        .flow("A", "E")
        .flow("D", "F")
        .flow("A", "F")
        .flow_at("E", "D", 1)
        .flow_at("D", "A", 1)
        .build()
}

/// `y[i] = a * x[i] + y[i]` — the BLAS-1 saxpy loop.
pub fn saxpy(iterations: u64) -> DepGraph {
    GraphBuilder::new("saxpy")
        .iterations(iterations)
        .node("addr", OpClass::IntAlu)
        .node("lx", OpClass::Load)
        .node("ly", OpClass::Load)
        .node("mul", OpClass::FpMul)
        .node("add", OpClass::FpAdd)
        .node("st", OpClass::Store)
        .flow_at("addr", "addr", 1)
        .flow("addr", "lx")
        .flow("addr", "ly")
        .flow("addr", "st")
        .flow("lx", "mul")
        .flow("mul", "add")
        .flow("ly", "add")
        .flow("add", "st")
        .build()
}

/// `s += x[i] * y[i]` — dot product; the accumulator is a loop-carried recurrence, so
/// the loop's RecMII equals the FP-add latency.
pub fn dot_product(iterations: u64) -> DepGraph {
    GraphBuilder::new("dot")
        .iterations(iterations)
        .node("addr", OpClass::IntAlu)
        .node("lx", OpClass::Load)
        .node("ly", OpClass::Load)
        .node("mul", OpClass::FpMul)
        .node("acc", OpClass::FpAdd)
        .flow_at("addr", "addr", 1)
        .flow("addr", "lx")
        .flow("addr", "ly")
        .flow("lx", "mul")
        .flow("ly", "mul")
        .flow("mul", "acc")
        .flow_at("acc", "acc", 1)
        .build()
}

/// A 1-D three-point stencil: `b[i] = c0*a[i-1] + c1*a[i] + c2*a[i+1]`.
pub fn stencil3(iterations: u64) -> DepGraph {
    GraphBuilder::new("stencil3")
        .iterations(iterations)
        .node("addr", OpClass::IntAlu)
        .node("lm1", OpClass::Load)
        .node("l0", OpClass::Load)
        .node("lp1", OpClass::Load)
        .node("m0", OpClass::FpMul)
        .node("m1", OpClass::FpMul)
        .node("m2", OpClass::FpMul)
        .node("a0", OpClass::FpAdd)
        .node("a1", OpClass::FpAdd)
        .node("st", OpClass::Store)
        .flow_at("addr", "addr", 1)
        .flow("addr", "lm1")
        .flow("addr", "l0")
        .flow("addr", "lp1")
        .flow("addr", "st")
        .flow("lm1", "m0")
        .flow("l0", "m1")
        .flow("lp1", "m2")
        .flow("m0", "a0")
        .flow("m1", "a0")
        .flow("a0", "a1")
        .flow("m2", "a1")
        .flow("a1", "st")
        .build()
}

/// Livermore kernel 5 (tridiagonal elimination): a tight first-order recurrence
/// `x[i] = z[i] * (y[i] - x[i-1])` that no amount of resources can speed up — the
/// archetype of a loop that unrolling does **not** help.
pub fn tridiag(iterations: u64) -> DepGraph {
    GraphBuilder::new("tridiag")
        .iterations(iterations)
        .node("addr", OpClass::IntAlu)
        .node("lz", OpClass::Load)
        .node("ly", OpClass::Load)
        .node("sub", OpClass::FpAdd)
        .node("mul", OpClass::FpMul)
        .node("st", OpClass::Store)
        .flow_at("addr", "addr", 1)
        .flow("addr", "lz")
        .flow("addr", "ly")
        .flow("addr", "st")
        .flow("lz", "mul")
        .flow("ly", "sub")
        .flow("sub", "mul")
        .flow("mul", "st")
        // x[i-1] feeds the subtraction of the next iteration.
        .flow_at("mul", "sub", 1)
        .build()
}

/// Livermore kernel 1 (hydro fragment): `x[i] = q + y[i]*(r*z[i+10] + t*z[i+11])`.
pub fn hydro(iterations: u64) -> DepGraph {
    GraphBuilder::new("hydro")
        .iterations(iterations)
        .node("addr", OpClass::IntAlu)
        .node("lz10", OpClass::Load)
        .node("lz11", OpClass::Load)
        .node("ly", OpClass::Load)
        .node("m_r", OpClass::FpMul)
        .node("m_t", OpClass::FpMul)
        .node("a0", OpClass::FpAdd)
        .node("m_y", OpClass::FpMul)
        .node("a_q", OpClass::FpAdd)
        .node("st", OpClass::Store)
        .flow_at("addr", "addr", 1)
        .flow("addr", "lz10")
        .flow("addr", "lz11")
        .flow("addr", "ly")
        .flow("addr", "st")
        .flow("lz10", "m_r")
        .flow("lz11", "m_t")
        .flow("m_r", "a0")
        .flow("m_t", "a0")
        .flow("a0", "m_y")
        .flow("ly", "m_y")
        .flow("m_y", "a_q")
        .flow("a_q", "st")
        .build()
}

/// A 2-D 5-point stencil sweep (Jacobi-like), representative of `swim`/`mgrid`
/// innermost loops: wide, load-heavy, no loop-carried dependence.
pub fn jacobi5(iterations: u64) -> DepGraph {
    GraphBuilder::new("jacobi5")
        .iterations(iterations)
        .node("addr", OpClass::IntAlu)
        .node("ln", OpClass::Load)
        .node("ls", OpClass::Load)
        .node("le", OpClass::Load)
        .node("lw", OpClass::Load)
        .node("lc", OpClass::Load)
        .node("a0", OpClass::FpAdd)
        .node("a1", OpClass::FpAdd)
        .node("a2", OpClass::FpAdd)
        .node("m", OpClass::FpMul)
        .node("a3", OpClass::FpAdd)
        .node("st", OpClass::Store)
        .flow_at("addr", "addr", 1)
        .flow("addr", "ln")
        .flow("addr", "ls")
        .flow("addr", "le")
        .flow("addr", "lw")
        .flow("addr", "lc")
        .flow("addr", "st")
        .flow("ln", "a0")
        .flow("ls", "a0")
        .flow("le", "a1")
        .flow("lw", "a1")
        .flow("a0", "a2")
        .flow("a1", "a2")
        .flow("a2", "m")
        .flow("lc", "a3")
        .flow("m", "a3")
        .flow("a3", "st")
        .build()
}

/// All named kernels (name, graph), with a default iteration count of 1000.
pub fn named_kernels() -> Vec<(&'static str, DepGraph)> {
    vec![
        ("figure7", paper_example_loop()),
        ("saxpy", saxpy(1000)),
        ("dot", dot_product(1000)),
        ("stencil3", stencil3(1000)),
        ("tridiag", tridiag(1000)),
        ("hydro", hydro(1000)),
        ("jacobi5", jacobi5(1000)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::MachineConfig;
    use vliw_ddg::{mii, rec_mii};

    #[test]
    fn all_kernels_are_valid_graphs() {
        for (name, g) in named_kernels() {
            assert!(g.validate().is_ok(), "kernel {name} invalid");
            assert!(g.n_nodes() >= 5, "kernel {name} suspiciously small");
            assert!(
                g.iterations > 4,
                "kernel {name} below the paper's iteration cutoff"
            );
        }
    }

    #[test]
    fn figure7_has_the_published_bounds() {
        let g = paper_example_loop();
        assert_eq!(g.n_nodes(), 6);
        assert_eq!(rec_mii(&g), 2); // ceil(3/2)
    }

    #[test]
    fn dot_product_rec_mii_is_the_fp_add_latency() {
        let g = dot_product(100);
        assert_eq!(rec_mii(&g), 3);
    }

    #[test]
    fn tridiag_has_a_long_recurrence() {
        let g = tridiag(100);
        // sub (3) + mul (4) around a distance-1 cycle
        assert_eq!(rec_mii(&g), 7);
    }

    #[test]
    fn saxpy_mii_is_resource_bound_on_the_unified_machine() {
        let machine = MachineConfig::unified();
        let g = saxpy(100);
        assert_eq!(mii(&g, &machine), 1);
    }

    #[test]
    fn jacobi_is_memory_bound_on_the_unified_machine() {
        let machine = MachineConfig::unified();
        let g = jacobi5(100);
        // 7 memory operations over 4 memory units
        assert_eq!(mii(&g, &machine), 2);
    }

    #[test]
    fn kernel_names_are_unique() {
        let mut names: Vec<_> = named_kernels().iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), named_kernels().len());
    }
}
