//! # vliw-workloads — loop corpora for the clustered VLIW scheduling study
//!
//! The paper evaluates its schedulers on the innermost loops of the SPECfp95
//! benchmarks, extracted by the ICTINEO compiler and run to completion with the *test*
//! inputs.  Neither the compiler nor the benchmark binaries can be redistributed here,
//! so this crate provides the substitute documented in `DESIGN.md`:
//!
//! * [`kernels`] — hand-written dependence graphs for well-known numerical kernels
//!   (saxpy, dot product, stencils, Livermore-style loops) **and the worked example of
//!   Figure 7 of the paper** ([`paper_example_loop`]);
//! * [`generator`] — a deterministic, seeded generator of synthetic innermost-loop
//!   dependence graphs with controllable structural statistics (size, operation mix,
//!   loop-carried dependence density, recurrence depth);
//! * [`spec`] — per-benchmark profiles for the ten SPECfp95 programs ([`SpecFp95`])
//!   and [`LoopCorpus`], the weighted collection of loops standing in for one
//!   benchmark.
//!
//! The generator is calibrated so that the corpus reproduces the structural facts the
//! paper's conclusions rest on: innermost loops are dominated by FP and memory
//! operations, most loop iterations are independent (few loop-carried dependences),
//! loop bodies have a handful to a few dozen operations, and the loops targeted by the
//! schedulers run for more than four iterations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod generator;
pub mod kernels;
pub mod spec;
pub mod stats;

pub use generator::{GeneratorProfile, LoopGenerator};
pub use kernels::{named_kernels, paper_example_loop};
pub use spec::{LoopCorpus, SpecFp95};
pub use stats::{CorpusStats, LoopStats};
