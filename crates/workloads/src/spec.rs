//! Per-benchmark loop corpora standing in for the SPECfp95 programs.
//!
//! The paper evaluates the ten SPECfp95 programs; their innermost loops (covering
//! about 95 % of the executed instructions) are what the schedulers see.  Since the
//! suite cannot be redistributed, every program is represented here by a **seeded
//! corpus of synthetic loops** whose structural statistics follow the program's
//! published character:
//!
//! | program  | character captured by the profile |
//! |----------|------------------------------------|
//! | tomcatv  | long vectorisable bodies but with loop-carried reuse (the program the paper singles out as hurt by 4-way unrolling) |
//! | swim     | wide, independent stencil sweeps (shallow, load/store heavy) |
//! | su2cor   | medium bodies with reductions |
//! | hydro2d  | hydrodynamics stencils, mostly independent iterations |
//! | mgrid    | 27-point-stencil style: many loads per statement, no recurrences |
//! | applu    | SSOR solver: moderate recurrences and divides |
//! | turb3d   | FFT-like bodies: balanced FP mix, few memory ops |
//! | apsi     | many small statements, some reductions |
//! | fpppp    | huge straight-line bodies (the largest loops in the suite) |
//! | wave5    | particle pushes: medium bodies, few carried dependences |
//!
//! The absolute IPC of a synthetic corpus will not match the paper's per-program bars,
//! but the *relative* behaviour the paper reports (which configurations lose IPC, when
//! unrolling recovers it, how code size reacts) is driven by exactly the statistics the
//! profiles control.

use crate::generator::{GeneratorProfile, LoopGenerator};
use serde::{Deserialize, Serialize};
use vliw_ddg::DepGraph;

/// The ten SPECfp95 programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SpecFp95 {
    Tomcatv,
    Swim,
    Su2cor,
    Hydro2d,
    Mgrid,
    Applu,
    Turb3d,
    Apsi,
    Fpppp,
    Wave5,
}

impl SpecFp95 {
    /// All benchmarks, in the order the paper's Figure 8 lists them.
    pub const ALL: [SpecFp95; 10] = [
        SpecFp95::Tomcatv,
        SpecFp95::Swim,
        SpecFp95::Su2cor,
        SpecFp95::Hydro2d,
        SpecFp95::Mgrid,
        SpecFp95::Applu,
        SpecFp95::Turb3d,
        SpecFp95::Apsi,
        SpecFp95::Fpppp,
        SpecFp95::Wave5,
    ];

    /// Lower-case benchmark name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SpecFp95::Tomcatv => "tomcatv",
            SpecFp95::Swim => "swim",
            SpecFp95::Su2cor => "su2cor",
            SpecFp95::Hydro2d => "hydro2d",
            SpecFp95::Mgrid => "mgrid",
            SpecFp95::Applu => "applu",
            SpecFp95::Turb3d => "turb3d",
            SpecFp95::Apsi => "apsi",
            SpecFp95::Fpppp => "fpppp",
            SpecFp95::Wave5 => "wave5",
        }
    }

    /// Deterministic seed for this benchmark's corpus.
    fn seed(self) -> u64 {
        0x5EC_F95_u64 * 1000 + self as u64
    }

    /// Number of distinct innermost loops generated for the benchmark.
    fn loop_count(self) -> usize {
        match self {
            SpecFp95::Tomcatv => 12,
            SpecFp95::Swim => 14,
            SpecFp95::Su2cor => 22,
            SpecFp95::Hydro2d => 28,
            SpecFp95::Mgrid => 10,
            SpecFp95::Applu => 26,
            SpecFp95::Turb3d => 18,
            SpecFp95::Apsi => 30,
            SpecFp95::Fpppp => 8,
            SpecFp95::Wave5 => 24,
        }
    }

    /// The generator profile capturing the benchmark's structural character.
    pub fn profile(self) -> GeneratorProfile {
        let base = GeneratorProfile::default();
        match self {
            SpecFp95::Tomcatv => GeneratorProfile {
                min_statements: 3,
                max_statements: 6,
                min_loads_per_stmt: 2,
                max_loads_per_stmt: 5,
                reduction_prob: 0.10,
                carried_dep_prob: 0.35,
                fp_mul_prob: 0.55,
                div_prob: 0.03,
                iterations: (64, 512),
                invocations: (50, 800),
            },
            SpecFp95::Swim => GeneratorProfile {
                min_statements: 2,
                max_statements: 5,
                min_loads_per_stmt: 3,
                max_loads_per_stmt: 6,
                reduction_prob: 0.02,
                carried_dep_prob: 0.03,
                fp_mul_prob: 0.5,
                div_prob: 0.0,
                iterations: (128, 1024),
                invocations: (100, 1200),
            },
            SpecFp95::Su2cor => GeneratorProfile {
                min_statements: 2,
                max_statements: 5,
                reduction_prob: 0.30,
                carried_dep_prob: 0.10,
                ..base
            },
            SpecFp95::Hydro2d => GeneratorProfile {
                min_statements: 2,
                max_statements: 4,
                min_loads_per_stmt: 2,
                max_loads_per_stmt: 5,
                reduction_prob: 0.05,
                carried_dep_prob: 0.05,
                fp_mul_prob: 0.45,
                div_prob: 0.02,
                iterations: (32, 512),
                invocations: (100, 1000),
            },
            SpecFp95::Mgrid => GeneratorProfile {
                min_statements: 1,
                max_statements: 3,
                min_loads_per_stmt: 5,
                max_loads_per_stmt: 9,
                reduction_prob: 0.05,
                carried_dep_prob: 0.02,
                fp_mul_prob: 0.35,
                div_prob: 0.0,
                iterations: (64, 256),
                invocations: (200, 2000),
            },
            SpecFp95::Applu => GeneratorProfile {
                min_statements: 2,
                max_statements: 6,
                reduction_prob: 0.15,
                carried_dep_prob: 0.20,
                div_prob: 0.08,
                ..base
            },
            SpecFp95::Turb3d => GeneratorProfile {
                min_statements: 2,
                max_statements: 4,
                min_loads_per_stmt: 1,
                max_loads_per_stmt: 3,
                reduction_prob: 0.10,
                carried_dep_prob: 0.08,
                fp_mul_prob: 0.6,
                div_prob: 0.01,
                iterations: (16, 128),
                invocations: (200, 2000),
            },
            SpecFp95::Apsi => GeneratorProfile {
                min_statements: 1,
                max_statements: 4,
                reduction_prob: 0.25,
                carried_dep_prob: 0.12,
                div_prob: 0.06,
                ..base
            },
            SpecFp95::Fpppp => GeneratorProfile {
                min_statements: 5,
                max_statements: 9,
                min_loads_per_stmt: 2,
                max_loads_per_stmt: 5,
                reduction_prob: 0.20,
                carried_dep_prob: 0.10,
                fp_mul_prob: 0.6,
                div_prob: 0.02,
                iterations: (8, 64),
                invocations: (500, 4000),
            },
            SpecFp95::Wave5 => GeneratorProfile {
                min_statements: 1,
                max_statements: 4,
                reduction_prob: 0.10,
                carried_dep_prob: 0.06,
                ..base
            },
        }
    }

    /// Generate the loop corpus of this benchmark.
    pub fn corpus(self) -> LoopCorpus {
        LoopCorpus::generate(self)
    }
}

impl std::fmt::Display for SpecFp95 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The weighted set of innermost loops representing one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopCorpus {
    /// The benchmark this corpus stands in for.
    pub benchmark: SpecFp95,
    /// The loops, each carrying its iteration count and invocation weight.
    pub loops: Vec<DepGraph>,
}

impl LoopCorpus {
    /// Generate the corpus of `benchmark` (deterministic: same seed every time).
    pub fn generate(benchmark: SpecFp95) -> Self {
        let mut generator = LoopGenerator::new(benchmark.profile(), benchmark.seed());
        let loops = generator.generate_many(benchmark.name(), benchmark.loop_count());
        Self { benchmark, loops }
    }

    /// Generate the corpora of all ten benchmarks.
    pub fn all() -> Vec<Self> {
        SpecFp95::ALL.iter().map(|&b| Self::generate(b)).collect()
    }

    /// Total dynamic operation count of the corpus (useful operations, original
    /// bodies): `Σ ops × iterations × invocations`.
    pub fn total_dynamic_ops(&self) -> u64 {
        self.loops
            .iter()
            .map(|g| g.n_nodes() as u64 * g.iterations * g.invocations)
            .sum()
    }

    /// Number of loops in the corpus.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether the corpus is empty (never true for a generated corpus).
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::MachineConfig;
    use vliw_ddg::mii;

    #[test]
    fn ten_benchmarks_in_paper_order() {
        assert_eq!(SpecFp95::ALL.len(), 10);
        assert_eq!(SpecFp95::ALL[0].name(), "tomcatv");
        assert_eq!(SpecFp95::ALL[9].name(), "wave5");
    }

    #[test]
    fn corpora_are_deterministic() {
        let a = LoopCorpus::generate(SpecFp95::Swim);
        let b = LoopCorpus::generate(SpecFp95::Swim);
        assert_eq!(a, b);
    }

    #[test]
    fn corpora_differ_across_benchmarks() {
        let a = LoopCorpus::generate(SpecFp95::Swim);
        let b = LoopCorpus::generate(SpecFp95::Mgrid);
        assert_ne!(a.loops, b.loops);
    }

    #[test]
    fn every_corpus_loop_is_valid_and_above_iteration_cutoff() {
        for corpus in LoopCorpus::all() {
            assert!(!corpus.is_empty());
            for g in &corpus.loops {
                assert!(
                    g.validate().is_ok(),
                    "{}: invalid loop {}",
                    corpus.benchmark,
                    g.name
                );
                assert!(
                    g.iterations > 4,
                    "{}: loop below the cutoff",
                    corpus.benchmark
                );
            }
        }
    }

    #[test]
    fn tomcatv_has_more_carried_dependences_than_swim() {
        let carried = |b: SpecFp95| -> f64 {
            let c = LoopCorpus::generate(b);
            let total_edges: usize = c.loops.iter().map(vliw_ddg::DepGraph::n_edges).sum();
            let carried: usize = c
                .loops
                .iter()
                .map(vliw_ddg::DepGraph::loop_carried_edges)
                .sum();
            carried as f64 / total_edges as f64
        };
        assert!(carried(SpecFp95::Tomcatv) > carried(SpecFp95::Swim));
    }

    #[test]
    fn corpus_loops_are_schedulable_in_principle() {
        let machine = MachineConfig::unified();
        let corpus = LoopCorpus::generate(SpecFp95::Hydro2d);
        for g in &corpus.loops {
            assert!(mii(g, &machine) >= 1);
            assert!(mii(g, &machine) < 200, "absurd MII for {}", g.name);
        }
    }

    #[test]
    fn fpppp_has_the_largest_bodies() {
        let avg = |b: SpecFp95| -> f64 {
            let c = LoopCorpus::generate(b);
            c.loops
                .iter()
                .map(vliw_ddg::DepGraph::n_nodes)
                .sum::<usize>() as f64
                / c.len() as f64
        };
        assert!(avg(SpecFp95::Fpppp) > avg(SpecFp95::Turb3d));
        assert!(avg(SpecFp95::Fpppp) > avg(SpecFp95::Wave5));
    }

    #[test]
    fn total_dynamic_ops_is_positive_and_stable() {
        let c = LoopCorpus::generate(SpecFp95::Applu);
        assert!(c.total_dynamic_ops() > 0);
        assert_eq!(
            c.total_dynamic_ops(),
            LoopCorpus::generate(SpecFp95::Applu).total_dynamic_ops()
        );
    }
}
