//! Structural statistics of loop corpora.
//!
//! The paper's argument rests on structural facts about SPECfp95 innermost loops (few
//! loop-carried dependences, FP/memory-dominated bodies, enough iterations to
//! amortise the pipeline fill).  This module computes those statistics for any corpus
//! so that the calibration of the synthetic generator can be inspected, reported
//! (`corpus_stats` binary in `vliw-bench`) and asserted in tests.

use crate::spec::LoopCorpus;
use serde::{Deserialize, Serialize};
use vliw_arch::FuKind;
use vliw_ddg::{recurrences, DepGraph};

/// Structural statistics of a single loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopStats {
    /// Loop name.
    pub name: String,
    /// Number of operations in the body.
    pub ops: usize,
    /// Number of dependence edges.
    pub edges: usize,
    /// Number of loop-carried edges (distance > 0).
    pub loop_carried: usize,
    /// Number of recurrences (non-trivial SCCs).
    pub recurrences: usize,
    /// The largest per-recurrence RecMII.
    pub max_recurrence_mii: u32,
    /// Operations per functional-unit kind `[int, fp, mem]`.
    pub ops_per_kind: [usize; 3],
    /// Iteration count.
    pub iterations: u64,
    /// Invocation count.
    pub invocations: u64,
}

impl LoopStats {
    /// Compute the statistics of one loop.
    pub fn of(graph: &DepGraph) -> Self {
        let recs = recurrences(graph);
        Self {
            name: graph.name.clone(),
            ops: graph.n_nodes(),
            edges: graph.n_edges(),
            loop_carried: graph.loop_carried_edges(),
            recurrences: recs.len(),
            max_recurrence_mii: recs.iter().map(|r| r.rec_mii).max().unwrap_or(0),
            ops_per_kind: graph.ops_per_fu_kind(),
            iterations: graph.iterations,
            invocations: graph.invocations,
        }
    }
}

/// Aggregate statistics of a corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Benchmark name.
    pub benchmark: String,
    /// Number of loops.
    pub loops: usize,
    /// Mean operations per loop body.
    pub mean_ops: f64,
    /// Largest loop body.
    pub max_ops: usize,
    /// Fraction of edges that are loop-carried.
    pub loop_carried_fraction: f64,
    /// Fraction of loops containing at least one FP recurrence beyond the induction
    /// variable.
    pub loops_with_recurrences: f64,
    /// Fraction of operations executed on each functional-unit kind `[int, fp, mem]`.
    pub kind_mix: [f64; 3],
    /// Mean iteration count.
    pub mean_iterations: f64,
    /// Per-loop statistics.
    pub per_loop: Vec<LoopStats>,
}

impl CorpusStats {
    /// Compute the statistics of `corpus`.
    pub fn of(corpus: &LoopCorpus) -> Self {
        let per_loop: Vec<LoopStats> = corpus.loops.iter().map(LoopStats::of).collect();
        let loops = per_loop.len().max(1);
        let total_ops: usize = per_loop.iter().map(|l| l.ops).sum();
        let total_edges: usize = per_loop.iter().map(|l| l.edges).sum();
        let total_carried: usize = per_loop.iter().map(|l| l.loop_carried).sum();
        let mut kind_totals = [0usize; 3];
        for l in &per_loop {
            for (total, n) in kind_totals.iter_mut().zip(l.ops_per_kind) {
                *total += n;
            }
        }
        // "Recurrences beyond the induction variable": more than one non-trivial SCC,
        // or a single one whose RecMII exceeds the 1-cycle induction update.
        let with_recs = per_loop
            .iter()
            .filter(|l| l.recurrences > 1 || l.max_recurrence_mii > 1)
            .count();
        Self {
            benchmark: corpus.benchmark.name().to_string(),
            loops: per_loop.len(),
            mean_ops: total_ops as f64 / loops as f64,
            max_ops: per_loop.iter().map(|l| l.ops).max().unwrap_or(0),
            loop_carried_fraction: if total_edges == 0 {
                0.0
            } else {
                total_carried as f64 / total_edges as f64
            },
            loops_with_recurrences: with_recs as f64 / loops as f64,
            kind_mix: {
                let total = (kind_totals.iter().sum::<usize>()).max(1) as f64;
                [
                    kind_totals[FuKind::Int.index()] as f64 / total,
                    kind_totals[FuKind::Fp.index()] as f64 / total,
                    kind_totals[FuKind::Mem.index()] as f64 / total,
                ]
            },
            mean_iterations: per_loop.iter().map(|l| l.iterations).sum::<u64>() as f64
                / loops as f64,
            per_loop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecFp95;

    #[test]
    fn stats_of_a_corpus_are_internally_consistent() {
        let corpus = LoopCorpus::generate(SpecFp95::Applu);
        let stats = CorpusStats::of(&corpus);
        assert_eq!(stats.loops, corpus.len());
        assert_eq!(stats.per_loop.len(), corpus.len());
        assert!(stats.mean_ops > 3.0);
        assert!(stats.max_ops >= stats.mean_ops as usize);
        assert!((0.0..=1.0).contains(&stats.loop_carried_fraction));
        let mix_sum: f64 = stats.kind_mix.iter().sum();
        assert!((mix_sum - 1.0).abs() < 1e-9);
        assert!(stats.mean_iterations > 4.0);
    }

    #[test]
    fn fp_and_memory_dominate_every_corpus() {
        for corpus in LoopCorpus::all() {
            let stats = CorpusStats::of(&corpus);
            assert!(
                stats.kind_mix[1] + stats.kind_mix[2] > 0.6,
                "{}: fp+mem fraction {:.2} too low",
                stats.benchmark,
                stats.kind_mix[1] + stats.kind_mix[2]
            );
        }
    }

    #[test]
    fn tomcatv_profile_shows_more_recurrences_than_swim() {
        let tomcatv = CorpusStats::of(&LoopCorpus::generate(SpecFp95::Tomcatv));
        let swim = CorpusStats::of(&LoopCorpus::generate(SpecFp95::Swim));
        assert!(tomcatv.loop_carried_fraction > swim.loop_carried_fraction);
    }

    #[test]
    fn per_loop_stats_track_the_graph() {
        let corpus = LoopCorpus::generate(SpecFp95::Mgrid);
        let g = &corpus.loops[0];
        let stats = LoopStats::of(g);
        assert_eq!(stats.ops, g.n_nodes());
        assert_eq!(stats.edges, g.n_edges());
        assert_eq!(stats.loop_carried, g.loop_carried_edges());
        assert_eq!(stats.ops_per_kind, g.ops_per_fu_kind());
    }
}
