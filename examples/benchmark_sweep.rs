//! Schedule a whole SPECfp95-like benchmark corpus across the paper's machine
//! configurations and unrolling policies, and print the relative-IPC summary — a
//! miniature of Figure 8 for one benchmark.
//!
//! Run with: `cargo run --release --example benchmark_sweep [benchmark]`
//! where `benchmark` is one of tomcatv, swim, su2cor, hydro2d, mgrid, applu, turb3d,
//! apsi, fpppp, wave5 (default: hydro2d).

use clustered_vliw::core::{BsaScheduler, LoopScheduler, SelectiveUnroller, UnrollPolicy};
use clustered_vliw::metrics::{IpcAccountant, LoopContribution, TextTable};
use clustered_vliw::prelude::*;

fn corpus_ipc<S: LoopScheduler>(corpus: &LoopCorpus, scheduler: S, policy: UnrollPolicy) -> f64 {
    let driver = SelectiveUnroller::new(scheduler);
    let mut acc = IpcAccountant::new();
    for graph in &corpus.loops {
        let result = driver
            .schedule_with_policy(graph, policy)
            .expect("corpus loops are schedulable");
        acc.add(LoopContribution::new(
            &result.schedule,
            result.scheduled_graph.iterations,
            result.original_ops,
            result.original_iterations,
            result.invocations,
            result.unroll_factor,
        ));
    }
    acc.ipc()
}

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "hydro2d".to_string());
    let benchmark = SpecFp95::ALL
        .into_iter()
        .find(|b| b.name() == which)
        .unwrap_or_else(|| panic!("unknown benchmark '{which}'"));
    let corpus = LoopCorpus::generate(benchmark);
    println!(
        "Benchmark {} — {} innermost loops, {} dynamic operations\n",
        benchmark,
        corpus.len(),
        corpus.total_dynamic_ops()
    );

    let unified = MachineConfig::unified();
    let unified_ipc = corpus_ipc(&corpus, SmsScheduler::new(&unified), UnrollPolicy::None);
    println!("Unified 12-wide machine IPC: {unified_ipc:.2}\n");

    let mut table = TextTable::new(["configuration", "policy", "IPC", "relative to unified"]);
    for clusters in [2usize, 4] {
        for buses in [1usize, 2] {
            for latency in [1u32, 2, 4] {
                let machine = MachineConfig::clustered(clusters, buses, latency);
                for policy in UnrollPolicy::ALL {
                    let ipc = corpus_ipc(&corpus, BsaScheduler::new(&machine), policy);
                    table.row([
                        format!("{clusters}c/{buses}b/L{latency}"),
                        policy.label().to_string(),
                        format!("{ipc:.2}"),
                        format!("{:.3}", ipc / unified_ipc),
                    ]);
                }
            }
        }
    }
    println!("{table}");
}
