//! The IPC / code-size trade-off of the unrolling policies (the tension Figures 8 and
//! 10 of the paper explore): full unrolling recovers the unified IPC but inflates the
//! code, while selective unrolling keeps most of the IPC for a fraction of the growth.
//!
//! Run with: `cargo run --release --example codesize_tradeoff`

use clustered_vliw::core::{BsaScheduler, SelectiveUnroller, UnrollPolicy};
use clustered_vliw::metrics::{
    CodeSizeModel, CodeSizeReport, IpcAccountant, LoopContribution, TextTable,
};
use clustered_vliw::prelude::*;

fn main() {
    // A bus-starved machine where unrolling matters most: 4 clusters, one 2-cycle bus.
    let machine = MachineConfig::four_cluster(1, 2);
    println!("Machine: {machine}\n");

    let corpora = [SpecFp95::Swim, SpecFp95::Hydro2d, SpecFp95::Tomcatv].map(LoopCorpus::generate);

    let mut table = TextTable::new([
        "benchmark",
        "policy",
        "IPC",
        "unrolled loops",
        "useful ops",
        "total slots (incl. NOPs)",
    ]);
    for corpus in &corpora {
        for policy in UnrollPolicy::ALL {
            let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
            let code_model = CodeSizeModel::new(&machine);
            let mut acc = IpcAccountant::new();
            let mut code = CodeSizeReport::zero();
            let mut unrolled = 0usize;
            for graph in &corpus.loops {
                let result = driver.schedule_with_policy(graph, policy).unwrap();
                if result.unroll_factor > 1 {
                    unrolled += 1;
                }
                acc.add(LoopContribution::new(
                    &result.schedule,
                    result.scheduled_graph.iterations,
                    result.original_ops,
                    result.original_iterations,
                    result.invocations,
                    result.unroll_factor,
                ));
                code.accumulate(
                    code_model.loop_size(&result.schedule, result.scheduled_graph.n_nodes()),
                );
            }
            table.row([
                corpus.benchmark.name().to_string(),
                policy.label().to_string(),
                format!("{:.2}", acc.ipc()),
                format!("{unrolled}/{}", corpus.len()),
                code.useful_ops.to_string(),
                code.total_slots.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Selective unrolling only unrolls the bus-limited loops, so it tracks the IPC of\n\
         full unrolling while its static code size stays close to the non-unrolled code\n\
         (compare the 'total slots' column across policies)."
    );
}
