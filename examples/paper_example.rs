//! The worked example of Figure 7 of the paper: how unrolling a loop by the number of
//! clusters hides the inter-cluster communication latency.
//!
//! The loop has six unit-latency operations A..F and a recurrence of latency 3 over
//! distance 2 (RecMII 2); the machine has two clusters of two general-purpose units
//! each and a single 1-cycle bus.  Without unrolling, the communications cannot all be
//! placed at the minimum II; after unrolling by 2, each iteration runs on its own
//! cluster and only two transfers per (unrolled) iteration remain.
//!
//! Run with: `cargo run --release --example paper_example`

use clustered_vliw::prelude::*;
use vliw_arch::{BusConfig, ClusterConfig, LatencyModel};
use vliw_ddg::{mii, unroll};

fn figure7_machine(bus_latency: u32) -> MachineConfig {
    MachineConfig::new(
        format!("fig7-2cluster-L{bus_latency}"),
        2,
        ClusterConfig::new(2, 0, 0, 32),
        BusConfig::new(1, bus_latency),
        LatencyModel::unit(),
    )
}

fn main() {
    let graph = paper_example_loop();
    println!("{graph}");

    for bus_latency in [1u32, 2] {
        let machine = figure7_machine(bus_latency);
        println!("=== {machine} ===");
        let bsa = BsaScheduler::new(&machine);

        // Non-unrolled loop.
        let plain = bsa.schedule(&graph).expect("schedulable");
        println!(
            "  no unrolling       : MII={} -> II={} SC={} comms/iter={}",
            mii(&graph, &machine),
            plain.ii(),
            plain.stage_count(),
            plain.comms().len()
        );

        // Unrolled by the number of clusters.
        let unrolled = unroll(&graph, 2);
        let unrolled_sched = bsa.schedule(&unrolled).expect("schedulable");
        println!(
            "  unrolled by 2      : MII={} -> II={} SC={} comms/unrolled-iter={}  (II per original iteration: {:.1})",
            mii(&unrolled, &machine),
            unrolled_sched.ii(),
            unrolled_sched.stage_count(),
            unrolled_sched.comms().len(),
            unrolled_sched.ii() as f64 / 2.0
        );

        // Which cluster did each copy land on?
        for copy in 0..2u32 {
            let clusters: Vec<usize> = unrolled
                .nodes()
                .filter(|n| n.copy == copy)
                .filter_map(|n| unrolled_sched.cluster_of(n.id))
                .collect();
            println!("    iteration copy {copy} runs on clusters {clusters:?}");
        }

        // Effective throughput comparison in cycles per original iteration.
        let per_iter_plain = plain.ii() as f64;
        let per_iter_unrolled = unrolled_sched.ii() as f64 / 2.0;
        println!(
            "  unrolling gains {:.0}% throughput on this machine\n",
            (per_iter_plain / per_iter_unrolled - 1.0) * 100.0
        );
    }
}
