//! Quickstart: build a loop, modulo-schedule it on a clustered VLIW machine with the
//! paper's BSA scheduler, and inspect the result.
//!
//! Run with: `cargo run --release --example quickstart`

use clustered_vliw::prelude::*;
use clustered_vliw::{core::UnrollPolicy, ddg};
use vliw_arch::OpClass;

fn main() {
    // 1. Describe the machine: the 4-cluster configuration of Table 1 with one
    //    1-cycle bus (1 INT + 1 FP + 1 MEM unit and 16 registers per cluster).
    let machine = MachineConfig::four_cluster(1, 1);
    println!("Machine: {machine}\n");

    // 2. Build the dependence graph of an innermost loop:
    //    for i { y[i] = a*x[i] + y[i] }  (saxpy), 1000 iterations.
    let graph = ddg::GraphBuilder::new("saxpy")
        .iterations(1000)
        .node("addr", OpClass::IntAlu)
        .node("lx", OpClass::Load)
        .node("ly", OpClass::Load)
        .node("mul", OpClass::FpMul)
        .node("add", OpClass::FpAdd)
        .node("st", OpClass::Store)
        .flow_at("addr", "addr", 1) // induction variable
        .flow("addr", "lx")
        .flow("addr", "ly")
        .flow("addr", "st")
        .flow("lx", "mul")
        .flow("mul", "add")
        .flow("ly", "add")
        .flow("add", "st")
        .build();
    println!("{graph}");
    println!(
        "MII = {} (ResMII {} / RecMII {})\n",
        ddg::mii(&graph, &machine),
        ddg::res_mii(&graph, &machine),
        ddg::rec_mii(&graph)
    );

    // 3. Schedule it: cluster assignment and cycle assignment in a single pass, with
    //    the selective unrolling policy of the paper.
    let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
    let result = driver
        .schedule_with_policy(&graph, UnrollPolicy::Selective)
        .expect("saxpy is schedulable");
    println!("Schedule: {}", result.schedule.summary());
    println!("Unroll factor: {}", result.unroll_factor);
    println!("IPC of this loop: {:.2}\n", result.ipc());

    // 4. Show the kernel as VLIW instructions.
    let kernel = result
        .schedule
        .kernel_program(&result.scheduled_graph, &machine);
    println!("Kernel ({} instruction(s)):\n{kernel}", kernel.len());

    // 5. Cross-check by replaying the schedule cycle by cycle in the simulator.
    let report = KernelSimulator::new(&machine).run(
        &result.scheduled_graph,
        &result.schedule,
        result.scheduled_graph.iterations,
    );
    println!(
        "Simulated {} iterations: {} cycles (analytic {}), {} bus transfers, {:.1}% FU utilisation, clean = {}",
        report.iterations,
        report.cycles,
        report.analytic_cycles,
        report.bus_transfers,
        report.fu_utilization * 100.0,
        report.is_clean()
    );

    // 6. Compare against the unified machine with the same total resources.
    let unified = machine.unified_counterpart();
    let unified_sched = SmsScheduler::new(&unified).schedule(&graph).unwrap();
    println!(
        "\nUnified machine reaches II = {}; clustered II = {} -> relative IPC ≈ {:.2}",
        unified_sched.ii(),
        result.schedule.ii(),
        unified_sched.ii() as f64 / result.schedule.ii() as f64 * result.unroll_factor as f64
    );
}
