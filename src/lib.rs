//! # clustered-vliw
//!
//! Umbrella crate for the reproduction of *"The Effectiveness of Loop Unrolling for
//! Modulo Scheduling in Clustered VLIW Architectures"* (J. Sánchez and A. González,
//! ICPP 2000).
//!
//! The individual subsystems live in their own crates; this crate simply re-exports
//! them under stable names so that examples, integration tests and downstream users
//! can depend on a single entry point.
//!
//! ```
//! use clustered_vliw::prelude::*;
//!
//! // Build the 4-cluster machine of Table 1 with one 1-cycle bus.
//! let machine = MachineConfig::clustered(4, 1, 1);
//! // Schedule the worked example of Figure 7 of the paper.
//! let graph = paper_example_loop();
//! let schedule = BsaScheduler::new(&machine).schedule(&graph).expect("schedulable");
//! assert!(schedule.ii() >= clustered_vliw::ddg::mii(&graph, &machine));
//! ```

#![forbid(unsafe_code)]

pub use cvliw_core as core;
pub use vliw_arch as arch;
pub use vliw_ddg as ddg;
pub use vliw_lint as lint;
pub use vliw_metrics as metrics;
pub use vliw_sim as sim;
pub use vliw_sms as sms;
pub use vliw_timing as timing;
pub use vliw_verify as verify;
pub use vliw_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use cvliw_core::{
        BsaScheduler, ClusterSchedule, NeScheduler, SelectiveUnroller, UnrollPolicy,
    };
    pub use vliw_arch::{BusConfig, FuKind, MachineConfig, Operation};
    pub use vliw_ddg::{DepGraph, DepKind, Edge, Node, NodeId};
    pub use vliw_metrics::{CodeSizeModel, IpcAccountant};
    pub use vliw_sim::KernelSimulator;
    pub use vliw_sms::{ModuloSchedule, SmsScheduler};
    pub use vliw_timing::{CycleTimeModel, PalacharlaModel};
    pub use vliw_workloads::{paper_example_loop, LoopCorpus, SpecFp95};
}
