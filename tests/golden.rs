//! Golden-output regression tests: regenerate the committed figure/table artifacts
//! with the current engine + sweep runner at **full scale** and assert they match
//! the files under `results/` bit-for-bit — fig4, fig8, fig9, fig10, fig_unroll,
//! fig_optgap, table1 and table2, i.e. every committed experiment artifact.  This is the
//! behaviour-preservation guard of the engine refactor: the five schedulers route
//! through the shared `IiSearchDriver`, the figures through the memoized sweep —
//! and not a single byte of output moved.
//!
//! The tests are `#[ignore]`d by default because the full-scale Figure 8 sweep takes
//! ~1.5 minutes in release mode (and far longer in debug).  Run them with
//!
//! ```text
//! cargo test --release --test golden -- --ignored
//! ```
//!
//! CI runs exactly that in the dedicated `golden` job.  The corpora come from
//! `LoopCorpus::all()` directly (not `standard_corpora()`), so `FAST_EXPERIMENTS`
//! cannot silently shrink the comparison.

use serde::Serialize;
use vliw_bench::figures;
use vliw_workloads::LoopCorpus;

fn assert_matches_committed<T: Serialize>(value: &T, name: &str) {
    let rendered = serde_json::to_string_pretty(value).expect("figure rows serialize");
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("results/{name}.json"));
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert!(
        rendered == committed,
        "results/{name}.json drifted from the committed artifact \
         (regenerate with the matching `vliw-bench` binary — `cargo run --release \
         -p vliw-bench --bin {name}` for figures, `--bin lint` for lint_report — and \
         inspect the diff; committed {} bytes, regenerated {} bytes)",
        committed.len(),
        rendered.len()
    );
}

#[test]
#[ignore = "full-scale regeneration (seconds in release, minutes in debug); CI golden job runs it"]
fn fig4_regenerates_byte_identical() {
    let corpora = LoopCorpus::all();
    assert_matches_committed(&figures::fig4(&corpora).points, "fig4");
}

#[test]
#[ignore = "full-scale regeneration (~1.5 min in release); CI golden job runs it"]
fn fig8_regenerates_byte_identical() {
    let corpora = LoopCorpus::all();
    assert_matches_committed(&figures::fig8(&corpora), "fig8");
}

#[test]
#[ignore = "full-scale regeneration (seconds in release, minutes in debug); CI golden job runs it"]
fn fig9_regenerates_byte_identical() {
    let corpora = LoopCorpus::all();
    assert_matches_committed(&figures::fig9(&corpora), "fig9");
}

#[test]
#[ignore = "full-scale regeneration (~1.5 min in release); CI golden job runs it"]
fn fig10_regenerates_byte_identical() {
    let corpora = LoopCorpus::all();
    assert_matches_committed(&figures::fig10(&corpora), "fig10");
}

#[test]
#[ignore = "full-scale regeneration (~1 min in release); CI golden job runs it"]
fn fig_unroll_regenerates_byte_identical() {
    let corpora = LoopCorpus::all();
    assert_matches_committed(&figures::fig_unroll(&corpora), "fig_unroll");
}

#[test]
#[ignore = "full-scale regeneration (~2 min in release); CI golden job runs it"]
fn lint_report_regenerates_byte_identical() {
    let corpora = LoopCorpus::all();
    assert_matches_committed(
        &vliw_bench::lint_audit::audit_figures(&corpora),
        "lint_report",
    );
}

#[test]
#[ignore = "256-case fault campaign (~1 min in debug, seconds in release); CI golden job runs it"]
fn fault_campaign_regenerates_byte_identical() {
    // The robustness artifact: 256 seeded fault injections into the degradation
    // ladder, every one contained.  Regenerate with
    // `cargo run --release -p vliw-verify --bin fault`.
    let report = vliw_verify::run_fault_campaign(&vliw_verify::FaultCampaignConfig::default());
    assert!(
        report.passed(),
        "uncontained faults: {:?}",
        report.uncontained
    );
    assert_matches_committed(&report, "fault_campaign");
}

#[test]
#[ignore = "24-case solver-certified gap sweep (~10 s in release); CI golden job runs it"]
fn fig_optgap_regenerates_byte_identical() {
    // The optimality-gap artifact: every policy on both Table-1 machines over
    // the reduced fuzz corpus, certified by the branch-and-bound solver.
    // Regenerate with `cargo run --release -p vliw-bench --bin fig_optgap`.
    let report = vliw_bench::optgap::fig_optgap();
    assert_eq!(
        report.summary.lower_bound_violations, 0,
        "schedules below a certified lower bound"
    );
    assert_matches_committed(&report, "fig_optgap");
}

#[test]
#[ignore = "cheap, but grouped with the other golden regenerations in the CI golden job"]
fn table1_regenerates_byte_identical() {
    assert_matches_committed(&figures::table1(), "table1");
}

#[test]
#[ignore = "cheap, but grouped with the other golden regenerations in the CI golden job"]
fn table2_regenerates_byte_identical() {
    assert_matches_committed(&figures::table2(), "table2");
}
