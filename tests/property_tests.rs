//! Property-based tests (proptest) on the core data structures and schedulers:
//! randomly generated loop bodies must always produce legal schedules, unrolling must
//! preserve structure, and the reservation table must never be oversubscribed.

use clustered_vliw::core::{BsaScheduler, NeScheduler};
use clustered_vliw::prelude::*;
use clustered_vliw::sim::ScheduleValidator;
use proptest::prelude::*;
use vliw_arch::OpClass;
use vliw_ddg::{mii, rec_mii, unroll, DepGraph, DepKind};

/// Strategy: a random but well-formed loop body.
///
/// Nodes are generated first; intra-iteration edges only go from lower to higher node
/// indices (guaranteeing the zero-distance subgraph is acyclic), and a few loop-carried
/// edges with distance 1–3 are sprinkled anywhere.
fn arb_loop() -> impl Strategy<Value = DepGraph> {
    let classes = prop_oneof![
        Just(OpClass::IntAlu),
        Just(OpClass::Load),
        Just(OpClass::Load),
        Just(OpClass::Store),
        Just(OpClass::FpAdd),
        Just(OpClass::FpAdd),
        Just(OpClass::FpMul),
        Just(OpClass::FpMul),
        Just(OpClass::FpDiv),
    ];
    (
        2usize..18,
        proptest::collection::vec(classes, 18),
        any::<u64>(),
    )
        .prop_map(|(n_nodes, classes, seed)| {
            let mut g = DepGraph::new(format!("prop_{seed:x}"));
            g.iterations = 8 + (seed % 200);
            let ids: Vec<_> = (0..n_nodes).map(|i| g.add_node(classes[i])).collect();
            // Deterministic pseudo-random edge pattern derived from the seed.
            let mut state = seed | 1;
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            for i in 1..n_nodes {
                // Every node gets at least one predecessor among the earlier nodes so
                // the graph stays connected-ish.
                let p = (next() as usize) % i;
                let latency = 1 + (next() % 4) as u32;
                g.add_edge(ids[p], ids[i], latency, 0, DepKind::Flow);
                if next() % 3 == 0 {
                    let q = (next() as usize) % i;
                    g.add_edge(ids[q], ids[i], 1 + (next() % 4) as u32, 0, DepKind::Flow);
                }
            }
            // A few loop-carried edges.
            let carried = (next() % 3) as usize;
            for _ in 0..carried {
                let a = (next() as usize) % n_nodes;
                let b = (next() as usize) % n_nodes;
                let distance = 1 + (next() % 3) as u32;
                g.add_edge(
                    ids[a],
                    ids[b],
                    1 + (next() % 4) as u32,
                    distance,
                    DepKind::Flow,
                );
            }
            g
        })
}

fn assert_legal(
    graph: &DepGraph,
    sched: &clustered_vliw::sms::ModuloSchedule,
    machine: &MachineConfig,
) {
    let violations = ScheduleValidator::new(machine).validate(graph, sched);
    assert!(violations.is_empty(), "violations: {violations:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_loops_validate_and_schedule_on_the_unified_machine(graph in arb_loop()) {
        prop_assume!(graph.validate().is_ok());
        let machine = MachineConfig::unified();
        let sched = SmsScheduler::new(&machine).schedule(&graph).unwrap();
        prop_assert!(sched.ii() >= mii(&graph, &machine));
        assert_legal(&graph, &sched, &machine);
    }

    #[test]
    fn random_loops_schedule_legally_with_bsa_on_clustered_machines(graph in arb_loop()) {
        prop_assume!(graph.validate().is_ok());
        for machine in [MachineConfig::two_cluster(1, 1), MachineConfig::four_cluster(1, 2)] {
            let sched = BsaScheduler::new(&machine).schedule(&graph).unwrap();
            prop_assert!(sched.ii() >= mii(&graph, &machine));
            assert_legal(&graph, &sched, &machine);
            // The simulator agrees.
            let report = KernelSimulator::new(&machine).run(&graph, &sched, 8);
            prop_assert!(report.is_clean(), "{:?}", report.errors);
        }
    }

    #[test]
    fn random_loops_schedule_legally_with_the_two_phase_baseline(graph in arb_loop()) {
        prop_assume!(graph.validate().is_ok());
        let machine = MachineConfig::two_cluster(2, 1);
        let sched = NeScheduler::new(&machine).schedule(&graph).unwrap();
        assert_legal(&graph, &sched, &machine);
    }

    #[test]
    fn unrolling_preserves_structure(graph in arb_loop(), factor in 2u32..5) {
        prop_assume!(graph.validate().is_ok());
        let unrolled = unroll(&graph, factor);
        prop_assert!(unrolled.validate().is_ok());
        prop_assert_eq!(unrolled.n_nodes(), graph.n_nodes() * factor as usize);
        prop_assert_eq!(unrolled.n_edges(), graph.n_edges() * factor as usize);
        prop_assert_eq!(unrolled.iterations, graph.iterations.div_ceil(factor as u64));
        // Operation mix is preserved per copy.
        let orig = graph.ops_per_fu_kind();
        let unro = unrolled.ops_per_fu_kind();
        for k in 0..3 {
            prop_assert_eq!(unro[k], orig[k] * factor as usize);
        }
        // The per-original-iteration recurrence bound never gets worse.
        prop_assert!(rec_mii(&unrolled) <= rec_mii(&graph) * factor);
    }

    #[test]
    fn bus_rich_machines_never_schedule_worse_than_bus_poor_ones(graph in arb_loop()) {
        prop_assume!(graph.validate().is_ok());
        let poor = MachineConfig::four_cluster(1, 2);
        let rich = MachineConfig::four_cluster(2, 1);
        let sched_poor = BsaScheduler::new(&poor).schedule(&graph).unwrap();
        let sched_rich = BsaScheduler::new(&rich).schedule(&graph).unwrap();
        prop_assert!(sched_rich.ii() <= sched_poor.ii(),
            "rich {} > poor {}", sched_rich.ii(), sched_poor.ii());
    }

    #[test]
    fn mii_is_monotone_in_machine_width(graph in arb_loop()) {
        prop_assume!(graph.validate().is_ok());
        // The unified 12-wide machine can never have a larger MII than a 6-wide one.
        let wide = MachineConfig::unified();
        let narrow = MachineConfig::new(
            "narrow",
            1,
            vliw_arch::ClusterConfig::new(2, 2, 2, 64),
            vliw_arch::BusConfig::none(),
            vliw_arch::LatencyModel::table1(),
        );
        prop_assert!(mii(&graph, &wide) <= mii(&graph, &narrow));
    }
}
