//! Property-based tests (proptest) on the core data structures and schedulers:
//! randomly generated loop bodies must always produce legal schedules, unrolling must
//! preserve structure, the reservation table must never be oversubscribed, and the
//! checkpoint/rollback transaction must restore schedules bit-for-bit.

use clustered_vliw::core::{
    BsaScheduler, LoadBalancedScheduler, LoopScheduler, NeScheduler, RoundRobinScheduler,
    SelectiveUnroller, UnrollPolicy,
};
use clustered_vliw::prelude::*;
use clustered_vliw::sim::ScheduleValidator;
use proptest::prelude::*;
use vliw_arch::OpClass;
use vliw_ddg::{mii, rec_mii, unroll, DepGraph, DepKind};

/// Strategy: a random but well-formed loop body.
///
/// Nodes are generated first; intra-iteration edges only go from lower to higher node
/// indices (guaranteeing the zero-distance subgraph is acyclic), and a few loop-carried
/// edges with distance 1–3 are sprinkled anywhere.
fn arb_loop() -> impl Strategy<Value = DepGraph> {
    let classes = prop_oneof![
        Just(OpClass::IntAlu),
        Just(OpClass::Load),
        Just(OpClass::Load),
        Just(OpClass::Store),
        Just(OpClass::FpAdd),
        Just(OpClass::FpAdd),
        Just(OpClass::FpMul),
        Just(OpClass::FpMul),
        Just(OpClass::FpDiv),
    ];
    (
        2usize..18,
        proptest::collection::vec(classes, 18),
        any::<u64>(),
    )
        .prop_map(|(n_nodes, classes, seed)| {
            let mut g = DepGraph::new(format!("prop_{seed:x}"));
            g.iterations = 8 + (seed % 200);
            let ids: Vec<_> = (0..n_nodes).map(|i| g.add_node(classes[i])).collect();
            // Deterministic pseudo-random edge pattern derived from the seed.
            let mut state = seed | 1;
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            for i in 1..n_nodes {
                // Every node gets at least one predecessor among the earlier nodes so
                // the graph stays connected-ish.
                let p = (next() as usize) % i;
                let latency = 1 + (next() % 4) as u32;
                g.add_edge(ids[p], ids[i], latency, 0, DepKind::Flow);
                if next() % 3 == 0 {
                    let q = (next() as usize) % i;
                    g.add_edge(ids[q], ids[i], 1 + (next() % 4) as u32, 0, DepKind::Flow);
                }
            }
            // A few loop-carried edges.
            let carried = (next() % 3) as usize;
            for _ in 0..carried {
                let a = (next() as usize) % n_nodes;
                let b = (next() as usize) % n_nodes;
                let distance = 1 + (next() % 3) as u32;
                g.add_edge(
                    ids[a],
                    ids[b],
                    1 + (next() % 4) as u32,
                    distance,
                    DepKind::Flow,
                );
            }
            g
        })
}

fn assert_legal(
    graph: &DepGraph,
    sched: &clustered_vliw::sms::ModuloSchedule,
    machine: &MachineConfig,
) {
    let violations = ScheduleValidator::new(machine).validate(graph, sched);
    assert!(violations.is_empty(), "violations: {violations:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_loops_validate_and_schedule_on_the_unified_machine(graph in arb_loop()) {
        prop_assume!(graph.validate().is_ok());
        let machine = MachineConfig::unified();
        let sched = SmsScheduler::new(&machine).schedule(&graph).unwrap();
        prop_assert!(sched.ii() >= mii(&graph, &machine));
        assert_legal(&graph, &sched, &machine);
    }

    #[test]
    fn random_loops_schedule_legally_with_bsa_on_clustered_machines(graph in arb_loop()) {
        prop_assume!(graph.validate().is_ok());
        for machine in [MachineConfig::two_cluster(1, 1), MachineConfig::four_cluster(1, 2)] {
            let sched = BsaScheduler::new(&machine).schedule(&graph).unwrap();
            prop_assert!(sched.ii() >= mii(&graph, &machine));
            assert_legal(&graph, &sched, &machine);
            // The simulator agrees.
            let report = KernelSimulator::new(&machine).run(&graph, &sched, 8);
            prop_assert!(report.is_clean(), "{:?}", report.errors);
        }
    }

    #[test]
    fn random_loops_schedule_legally_with_the_two_phase_baseline(graph in arb_loop()) {
        prop_assume!(graph.validate().is_ok());
        let machine = MachineConfig::two_cluster(2, 1);
        let sched = NeScheduler::new(&machine).schedule(&graph).unwrap();
        assert_legal(&graph, &sched, &machine);
    }

    // Every cluster policy — BSA, N&E, round-robin, load-balanced and the unified
    // reference — runs through the same IiSearchDriver engine; whatever strategy a
    // policy picks, the resulting schedule must satisfy the dependence and
    // resource-conflict invariants, and the engine's diagnostics must agree with the
    // schedule.  (Before this test the ablation schedulers had no property coverage.)
    #[test]
    fn all_five_policies_produce_legal_schedules_through_the_shared_engine(graph in arb_loop()) {
        prop_assume!(graph.validate().is_ok());
        let machine = MachineConfig::two_cluster(2, 1);
        let schedulers: Vec<Box<dyn LoopScheduler>> = vec![
            Box::new(BsaScheduler::new(&machine)),
            Box::new(NeScheduler::new(&machine)),
            Box::new(RoundRobinScheduler::new(&machine)),
            Box::new(LoadBalancedScheduler::new(&machine)),
            Box::new(SmsScheduler::new(&machine.unified_counterpart())),
        ];
        for scheduler in &schedulers {
            let out = scheduler
                .schedule_loop(&graph)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", scheduler.name(), graph.name));
            let target = scheduler.machine();
            prop_assert!(out.schedule.ii() >= mii(&graph, target), "{}", scheduler.name());
            assert_legal(&graph, &out.schedule, target);
            // The diagnostics describe the schedule they came with.
            prop_assert_eq!(out.diagnostics.ii, out.schedule.ii());
            prop_assert!(out.diagnostics.ii >= out.diagnostics.mii);
            prop_assert_eq!(out.diagnostics.n_comms, out.schedule.comms().len());
            prop_assert_eq!(
                out.diagnostics.limited_by_bus(),
                out.schedule.limited_by_bus,
                "{}", scheduler.name()
            );
            prop_assert_eq!(out.diagnostics.max_live_per_cluster.len(), target.n_clusters);
            prop_assert_eq!(
                out.diagnostics.mii,
                out.diagnostics.res_mii.max(out.diagnostics.rec_mii)
            );
        }
    }

    // The executor oracle, property-style: whatever schedule any of the five
    // policies produces on a random graph must replay cleanly in the cycle-level
    // simulator, its simulated makespan must equal the closed-form makespan
    // exactly, and the analytic NCYCLES used by the IPC accounting must sit inside
    // its provable window of the measured makespan — i.e. the full differential
    // audit of `vliw_sim::check_schedule` finds nothing.
    #[test]
    fn all_five_policies_replay_cleanly_with_consistent_cycle_models(graph in arb_loop()) {
        prop_assume!(graph.validate().is_ok());
        let machine = MachineConfig::two_cluster(1, 2);
        let schedulers: Vec<Box<dyn LoopScheduler>> = vec![
            Box::new(BsaScheduler::new(&machine)),
            Box::new(NeScheduler::new(&machine)),
            Box::new(RoundRobinScheduler::new(&machine)),
            Box::new(LoadBalancedScheduler::new(&machine)),
            Box::new(SmsScheduler::new(&machine.unified_counterpart())),
        ];
        for scheduler in &schedulers {
            let out = scheduler
                .schedule_loop(&graph)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", scheduler.name(), graph.name));
            let target = scheduler.machine();
            let iterations = vliw_sim::verification_iterations(&graph);
            let sim = KernelSimulator::new(target).run(&graph, &out.schedule, iterations);
            prop_assert!(sim.is_clean(), "{}: {:?}", scheduler.name(), sim.errors);
            prop_assert_eq!(
                sim.cycles,
                vliw_sim::analytic_makespan(&graph, &out.schedule, target, iterations),
                "{}: replayed and closed-form makespans diverge", scheduler.name()
            );
            prop_assert_eq!(sim.analytic_cycles, out.schedule.cycles_for(iterations));
            let report = vliw_sim::check_schedule(target, &graph, &out.schedule, iterations);
            prop_assert!(report.is_clean(), "{}: {:?}", scheduler.name(), report.findings);
        }
    }

    #[test]
    fn unrolling_preserves_structure(graph in arb_loop(), factor in 2u32..5) {
        prop_assume!(graph.validate().is_ok());
        let unrolled = unroll(&graph, factor);
        prop_assert!(unrolled.validate().is_ok());
        prop_assert_eq!(unrolled.n_nodes(), graph.n_nodes() * factor as usize);
        prop_assert_eq!(unrolled.n_edges(), graph.n_edges() * factor as usize);
        prop_assert_eq!(unrolled.iterations, graph.iterations.div_ceil(factor as u64));
        // Operation mix is preserved per copy.
        let orig = graph.ops_per_fu_kind();
        let unro = unrolled.ops_per_fu_kind();
        for k in 0..3 {
            prop_assert_eq!(unro[k], orig[k] * factor as usize);
        }
        // The per-original-iteration recurrence bound never gets worse.
        prop_assert!(rec_mii(&unrolled) <= rec_mii(&graph) * factor);
    }

    #[test]
    fn bus_rich_machines_never_schedule_worse_than_bus_poor_ones(graph in arb_loop()) {
        prop_assume!(graph.validate().is_ok());
        let poor = MachineConfig::four_cluster(1, 2);
        let rich = MachineConfig::four_cluster(2, 1);
        let sched_poor = BsaScheduler::new(&poor).schedule(&graph).unwrap();
        let sched_rich = BsaScheduler::new(&rich).schedule(&graph).unwrap();
        prop_assert!(sched_rich.ii() <= sched_poor.ii(),
            "rich {} > poor {}", sched_rich.ii(), sched_poor.ii());
    }

    #[test]
    fn mii_is_monotone_in_machine_width(graph in arb_loop()) {
        prop_assume!(graph.validate().is_ok());
        // The unified 12-wide machine can never have a larger MII than a 6-wide one.
        let wide = MachineConfig::unified();
        let narrow = MachineConfig::new(
            "narrow",
            1,
            vliw_arch::ClusterConfig::new(2, 2, 2, 64),
            vliw_arch::BusConfig::none(),
            vliw_arch::LatencyModel::table1(),
        );
        prop_assert!(mii(&graph, &wide) <= mii(&graph, &narrow));
    }
}

/// Drive a schedule + reservation-table pair through `seed`-derived random bursts of
/// legal placements and bus reservations, half of them rolled back, asserting after
/// every rollback that both structures are bit-identical to the deep copies taken at
/// the checkpoint.  This is the invariant that lets BSA trial clusters on the live
/// schedule instead of cloning it per trial.
fn check_transaction_roundtrip(graph: &DepGraph, seed: u64) {
    use clustered_vliw::sms::{CommPlacement, ModuloReservationTable, ModuloSchedule, PlacedOp};
    let machine = MachineConfig::two_cluster(1, 2);
    let pool = vliw_arch::ResourcePool::new(&machine);
    let ii = 4 + (seed % 5) as u32;
    let mut sched = ModuloSchedule::new(&graph.name, graph.n_nodes(), ii, ii);
    let mut mrt = ModuloReservationTable::new(&pool, ii);
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };

    // Interleave committed bursts with rolled-back trial bursts.
    let mut unplaced: Vec<vliw_ddg::NodeId> = graph.node_ids().collect();
    for _ in 0..24 {
        let trial = next() % 2 == 0;
        let snapshot = trial.then(|| (sched.clone(), mrt.clone()));
        let cp = sched.checkpoint();
        let mut trial_reservations = Vec::new();

        for _ in 0..(1 + next() % 3) {
            if !unplaced.is_empty() && next() % 3 != 0 {
                let idx = (next() as usize) % unplaced.len();
                let node = unplaced[idx];
                let cluster = (next() as usize) % machine.n_clusters;
                let cycle = (next() % (3 * ii as u64)) as i64 - ii as i64;
                let kind = graph.node(node).class.fu_kind();
                if let Some(fu) = mrt.find_free(pool.fus(cluster, kind), cycle) {
                    trial_reservations.push(mrt.reserve(fu, cycle));
                    sched.place(PlacedOp {
                        node,
                        cycle,
                        cluster,
                        fu,
                    });
                    unplaced.swap_remove(idx);
                }
            } else if graph.n_nodes() >= 2 {
                // A bus transfer of random duration (may wrap column II-1 -> 0).
                let duration = 1 + (next() % ii as u64) as u32;
                let start = (next() % (2 * ii as u64)) as i64 - ii as i64;
                if let Some(bus) = mrt.find_free_for(pool.buses(), start, duration) {
                    trial_reservations.push(mrt.reserve_for(bus, start, duration));
                    sched.add_comm(CommPlacement {
                        src_node: vliw_ddg::NodeId(0),
                        dst_node: vliw_ddg::NodeId(1),
                        from_cluster: 0,
                        to_cluster: 1,
                        bus,
                        start_cycle: start,
                        duration,
                    });
                }
            }
        }

        if let Some((sched_before, mrt_before)) = snapshot {
            // Roll the whole burst back: the pair must be bit-identical.
            sched.rollback(cp);
            for r in trial_reservations.drain(..).rev() {
                mrt.release(r);
            }
            assert_eq!(sched, sched_before);
            assert_eq!(mrt, mrt_before);
            // Re-mark the burst's nodes as unplaced for later rounds.
            unplaced = graph
                .node_ids()
                .filter(|&n| sched.placement(n).is_none())
                .collect();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The checkpoint/rollback transaction must leave the schedule *and* the
    // reservation table bit-identical to a deep copy taken before the trial, for any
    // randomized sequence of placements, communications and releases.
    #[test]
    fn checkpoint_rollback_is_bit_identical_to_a_pre_trial_clone(
        graph in arb_loop(),
        seed in any::<u64>(),
    ) {
        prop_assume!(graph.validate().is_ok());
        check_transaction_roundtrip(&graph, seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The factor-exploration policy's contract: the factor-1 schedule is always a
    // candidate and the winner must beat it to be selected, so `Explore` can never
    // return a schedule with lower IPC than `UnrollPolicy::None` on the same
    // machine — for any loop, including trip counts the factors do not divide
    // (exact remainder accounting).
    #[test]
    fn explore_never_loses_to_no_unrolling(graph in arb_loop()) {
        prop_assume!(graph.validate().is_ok());
        for machine in [MachineConfig::two_cluster(1, 1), MachineConfig::four_cluster(1, 2)] {
            let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
            let none = driver.schedule_with_policy(&graph, UnrollPolicy::None).unwrap();
            let explored = driver
                .schedule_with_policy(&graph, UnrollPolicy::Explore { max_factor: 4 })
                .unwrap();
            prop_assert!(
                explored.ipc() >= none.ipc(),
                "{}: explore {} < none {} (factor {})",
                machine.name,
                explored.ipc(),
                none.ipc(),
                explored.unroll_factor
            );
            // Exact accounting: kernel iterations + epilogue iterations cover NITER.
            let covered = explored.scheduled_graph.iterations * explored.unroll_factor as u64
                + explored.remainder.as_ref().map_or(0, |r| r.iterations);
            prop_assert_eq!(covered, graph.iterations);
        }
    }

    // Unrolling composes: unroll(unroll(g, 2), 2) must be structurally identical to
    // unroll(g, 4) — root-relative provenance (original, flat copy index) and the
    // remapped edges alike.  (The flat copy index is what keeps useful-op
    // accounting honest when Explore revisits factors.)
    #[test]
    fn double_unrolling_equals_unrolling_by_the_product(graph in arb_loop()) {
        prop_assume!(graph.validate().is_ok());
        let composed = unroll(&unroll(&graph, 2), 2);
        let direct = unroll(&graph, 4);
        prop_assert_eq!(composed.iterations, direct.iterations);
        prop_assert_eq!(composed.n_nodes(), direct.n_nodes());
        for (a, b) in composed.nodes().zip(direct.nodes()) {
            prop_assert_eq!(a.original, b.original);
            prop_assert_eq!(a.copy, b.copy);
            prop_assert_eq!(a.class, b.class);
        }
        for (a, b) in composed.edges().zip(direct.edges()) {
            prop_assert_eq!((a.src, a.dst, a.latency, a.distance, a.kind),
                            (b.src, b.dst, b.latency, b.distance, b.kind));
        }
    }
}
