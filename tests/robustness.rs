//! Robustness-layer determinism: identical fuel budgets must produce
//! byte-identical schedules, diagnostics and winning rungs regardless of the
//! rayon thread count and across repeated runs.
//!
//! Fuel is counted work (probes, attempts, II steps), not wall-clock, so the
//! degradation ladder's outcome — including *which* rung wins and the exact fuel
//! it spent — is a pure function of its inputs.  The vendored rayon shim reads
//! `RAYON_NUM_THREADS` per call, so a single test can sweep thread counts
//! without racing other tests over the environment.

use cvliw_core::ResilientScheduler;
use vliw_arch::MachineSpace;
use vliw_sms::FuelBudget;
use vliw_verify::{generate_case, run_fault_campaign, FaultCampaignConfig};

#[test]
fn budgeted_ladders_are_byte_identical_across_thread_counts_and_reruns() {
    let space = MachineSpace::default();
    let mut renders: Vec<String> = Vec::new();
    // The repeated "2" makes the sweep cover re-runs at a fixed thread count, not
    // just distinct counts.
    for threads in ["1", "2", "4", "2"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let mut render = String::new();

        // (a) The degradation ladder under identical per-rung fuel budgets, on
        // seeded random machines and loops.  A starved budget (64 probes) forces
        // descents; a generous one exercises the budgeted-but-unconstrained path.
        for index in 0..6 {
            let case = generate_case(0x0B07, index, &space);
            for budget in [FuelBudget::probes(64), FuelBudget::probes(1_000_000)] {
                let ladder = ResilientScheduler::new(&case.machine).with_rung_fuel(budget);
                match ladder.schedule(&case.graph) {
                    Ok(out) => {
                        // The serialized ScheduledLoop carries the schedule, the
                        // diagnostics, the fuel spent and the winning rung.
                        render.push_str(&serde_json::to_string(&out.result).unwrap());
                        render.push_str(&format!(
                            "|rung={}|failed_rungs={}\n",
                            out.rung(),
                            out.failures.len()
                        ));
                    }
                    Err(fail) => render.push_str(&format!("|error={fail}\n")),
                }
            }
        }

        // (b) A rayon-parallel fault campaign: same seed, same bytes, whatever the
        // pool size.
        let report = run_fault_campaign(&FaultCampaignConfig {
            cases: 24,
            ..FaultCampaignConfig::default()
        });
        render.push_str(&serde_json::to_string(&report).unwrap());

        renders.push(render);
    }
    std::env::remove_var("RAYON_NUM_THREADS");

    for (i, render) in renders.iter().enumerate().skip(1) {
        assert_eq!(
            render, &renders[0],
            "fuel-budgeted scheduling diverged between thread-count runs 0 and {i}"
        );
    }
}
