//! Cross-crate integration tests: schedule real kernels and corpus loops on every
//! machine configuration of the paper with every scheduler, then audit each schedule
//! with the static validator and replay it in the cycle-level simulator.

use clustered_vliw::core::{
    BsaScheduler, LoopScheduler, NeScheduler, SelectiveUnroller, UnrollPolicy,
};
use clustered_vliw::prelude::*;
use clustered_vliw::sim::ScheduleValidator;
use clustered_vliw::workloads::kernels;
use vliw_ddg::mii;

/// The clustered configurations exercised by the paper's evaluation.
fn paper_machines() -> Vec<MachineConfig> {
    let mut machines = vec![MachineConfig::unified()];
    for clusters in [2usize, 4] {
        for buses in [1usize, 2] {
            for latency in [1u32, 2, 4] {
                machines.push(MachineConfig::clustered(clusters, buses, latency));
            }
        }
    }
    machines
}

fn schedulers_for(machine: &MachineConfig) -> Vec<Box<dyn LoopScheduler>> {
    let mut out: Vec<Box<dyn LoopScheduler>> =
        vec![Box::new(SmsScheduler::new(&machine.unified_counterpart()))];
    if machine.is_clustered() {
        out.push(Box::new(BsaScheduler::new(machine)));
        out.push(Box::new(NeScheduler::new(machine)));
    } else {
        out.push(Box::new(SmsScheduler::new(machine)));
    }
    out
}

#[test]
fn every_kernel_schedules_validates_and_simulates_everywhere() {
    for machine in paper_machines() {
        let validator = ScheduleValidator::new(&machine);
        let simulator = KernelSimulator::new(&machine);
        for (name, graph) in kernels::named_kernels() {
            // The BSA scheduler is the paper's contribution; run it on the clustered
            // machines and the plain SMS scheduler on the unified one.
            let sched = if machine.is_clustered() {
                BsaScheduler::new(&machine).schedule(&graph)
            } else {
                SmsScheduler::new(&machine).schedule(&graph)
            }
            .unwrap_or_else(|e| panic!("{name} on {}: {e}", machine.name));

            assert!(
                sched.ii() >= mii(&graph, &machine),
                "{name} on {}",
                machine.name
            );
            let violations = validator.validate(&graph, &sched);
            assert!(
                violations.is_empty(),
                "{name} on {}: {violations:?}",
                machine.name
            );
            let report = simulator.run(&graph, &sched, 20);
            assert!(
                report.is_clean(),
                "{name} on {}: {:?}",
                machine.name,
                report.errors
            );
            assert_eq!(report.ops_issued, 20 * graph.n_nodes() as u64);
        }
    }
}

#[test]
fn both_cluster_schedulers_validate_on_a_spec_corpus() {
    let corpus = LoopCorpus::generate(SpecFp95::Su2cor);
    let machine = MachineConfig::four_cluster(2, 2);
    let validator = ScheduleValidator::new(&machine);
    for graph in corpus.loops.iter().take(10) {
        for scheduler in schedulers_for(&machine) {
            if scheduler.name() == "unified-sms" {
                continue;
            }
            let sched = scheduler
                .schedule_loop(graph)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", scheduler.name(), graph.name))
                .schedule;
            let violations = validator.validate(graph, &sched);
            assert!(
                violations.is_empty(),
                "{} on {}: {violations:?}",
                scheduler.name(),
                graph.name
            );
        }
    }
}

#[test]
fn clustered_ipc_never_beats_unified_by_much_without_unrolling() {
    // Without unrolling, the clustered machine can only lose IPC with respect to the
    // unified machine with the same resources (small wins are possible because the
    // unified heuristic is not optimal, hence the 10% tolerance).
    let corpus = LoopCorpus::generate(SpecFp95::Wave5);
    let clustered = MachineConfig::four_cluster(1, 1);
    let unified = clustered.unified_counterpart();
    for graph in corpus.loops.iter().take(10) {
        let c = BsaScheduler::new(&clustered).schedule(graph).unwrap();
        let u = SmsScheduler::new(&unified).schedule(graph).unwrap();
        assert!(
            c.ii() as f64 >= u.ii() as f64 * 0.9,
            "{}: clustered II {} suspiciously better than unified II {}",
            graph.name,
            c.ii(),
            u.ii()
        );
    }
}

#[test]
fn selective_unrolling_tracks_full_unrolling_ipc_on_bus_starved_machines() {
    // The headline property of Section 6.2: the selective policy is close to the
    // full-unrolling policy in IPC (here per-loop cycle counts) while unrolling fewer
    // loops.
    let corpus = LoopCorpus::generate(SpecFp95::Hydro2d);
    let machine = MachineConfig::four_cluster(1, 2);
    let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
    let mut unrolled_all = 0usize;
    let mut unrolled_selective = 0usize;
    let mut cycles_all = 0u64;
    let mut cycles_selective = 0u64;
    let mut cycles_none = 0u64;
    for graph in corpus.loops.iter().take(12) {
        let all = driver
            .schedule_with_policy(graph, UnrollPolicy::ByClusters)
            .unwrap();
        let sel = driver
            .schedule_with_policy(graph, UnrollPolicy::Selective)
            .unwrap();
        let none = driver
            .schedule_with_policy(graph, UnrollPolicy::None)
            .unwrap();
        unrolled_all += (all.unroll_factor > 1) as usize;
        unrolled_selective += (sel.unroll_factor > 1) as usize;
        cycles_all += all.total_cycles();
        cycles_selective += sel.total_cycles();
        cycles_none += none.total_cycles();
    }
    assert!(unrolled_selective <= unrolled_all);
    // Selective must not be slower than no unrolling, and must stay within 25% of
    // unrolling everything.
    assert!(cycles_selective <= cycles_none);
    assert!(
        (cycles_selective as f64) <= cycles_all as f64 * 1.25,
        "selective {cycles_selective} vs all {cycles_all}"
    );
}

#[test]
fn simulated_cycles_match_the_analytic_model_on_clustered_machines() {
    let machine = MachineConfig::two_cluster(1, 2);
    let simulator = KernelSimulator::new(&machine);
    for (name, graph) in kernels::named_kernels() {
        let sched = BsaScheduler::new(&machine).schedule(&graph).unwrap();
        let iters = 50;
        let report = simulator.run(&graph, &sched, iters);
        assert!(report.is_clean(), "{name}: {:?}", report.errors);
        let slack = (report.analytic_cycles as i64 - report.cycles as i64).abs();
        assert!(
            slack <= (sched.ii() + machine.latencies.max_latency() + machine.buses.latency) as i64,
            "{name}: analytic {} vs simulated {}",
            report.analytic_cycles,
            report.cycles
        );
    }
}

#[test]
fn unrolling_preserves_total_work_in_the_simulator() {
    let machine = MachineConfig::two_cluster(2, 1);
    let graph = kernels::stencil3(64);
    let bsa = BsaScheduler::new(&machine);
    let plain = bsa.schedule(&graph).unwrap();
    let unrolled_graph = clustered_vliw::ddg::unroll(&graph, 2);
    let unrolled = bsa.schedule(&unrolled_graph).unwrap();
    let sim = KernelSimulator::new(&machine);
    let plain_report = sim.run(&graph, &plain, 64);
    let unrolled_report = sim.run(&unrolled_graph, &unrolled, 32);
    assert!(plain_report.is_clean() && unrolled_report.is_clean());
    // 64 original iterations == 32 unrolled-by-2 iterations of double the body.
    assert_eq!(plain_report.ops_issued, unrolled_report.ops_issued);
}

#[test]
fn figure7_numbers_reproduce() {
    // The papers' worked example: ResMII 2, RecMII 2 on the example machine; the
    // unrolled graph has minimum II 4 and needs only 2 communications per unrolled
    // iteration when scheduled by BSA.
    let graph = paper_example_loop();
    let machine = MachineConfig::new(
        "fig7",
        2,
        vliw_arch::ClusterConfig::new(2, 0, 0, 32),
        vliw_arch::BusConfig::new(1, 1),
        vliw_arch::LatencyModel::unit(),
    );
    assert_eq!(mii(&graph, &machine), 2);
    let unrolled = clustered_vliw::ddg::unroll(&graph, 2);
    assert_eq!(mii(&unrolled, &machine), 4);
    let sched = BsaScheduler::new(&machine).schedule(&unrolled).unwrap();
    assert!(sched.ii() >= 4);
    assert!(
        sched.comms().len() <= 2,
        "expected at most 2 communications, got {}",
        sched.comms().len()
    );
}
