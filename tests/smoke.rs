//! Workspace-level smoke test: the paper's worked example must schedule on the
//! 4-cluster Table 1 machine under both the BSA cluster scheduler and the unified
//! SMS scheduler, with an initiation interval no smaller than the analytic lower
//! bound `mii`.

use clustered_vliw::prelude::*;
use vliw_ddg::mii;

#[test]
fn paper_example_schedules_on_the_table1_machine_with_bsa() {
    let machine = MachineConfig::clustered(4, 1, 1);
    let graph = paper_example_loop();

    let schedule = BsaScheduler::new(&machine)
        .schedule(&graph)
        .expect("paper example must be schedulable with BSA");
    assert!(
        schedule.ii() >= mii(&graph, &machine),
        "BSA II {} below MII {}",
        schedule.ii(),
        mii(&graph, &machine)
    );
}

#[test]
fn paper_example_schedules_on_the_table1_machine_with_sms() {
    let machine = MachineConfig::clustered(4, 1, 1);
    let graph = paper_example_loop();

    // The unified SMS scheduler is the IPC reference; run it on the unified
    // counterpart of the same machine (same total resources, no clustering).
    let unified = machine.unified_counterpart();
    let schedule = SmsScheduler::new(&unified)
        .schedule(&graph)
        .expect("paper example must be schedulable with SMS");
    assert!(
        schedule.ii() >= mii(&graph, &unified),
        "SMS II {} below MII {}",
        schedule.ii(),
        mii(&graph, &unified)
    );

    // The clustered machine can never have a *smaller* MII than its unified
    // counterpart: clustering only adds bus constraints.
    assert!(mii(&graph, &machine) >= mii(&graph, &unified));
}

#[test]
fn bsa_schedule_of_the_paper_example_passes_the_validator_and_simulator() {
    let machine = MachineConfig::clustered(4, 1, 1);
    let graph = paper_example_loop();
    let schedule = BsaScheduler::new(&machine).schedule(&graph).unwrap();

    let violations =
        clustered_vliw::sim::ScheduleValidator::new(&machine).validate(&graph, &schedule);
    assert!(violations.is_empty(), "violations: {violations:?}");

    let report = KernelSimulator::new(&machine).run(&graph, &schedule, 16);
    assert!(report.is_clean(), "simulator errors: {:?}", report.errors);
}
