//! Offline stand-in for `criterion`.
//!
//! Implements the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — with a
//! simple timing loop: each benchmark runs `sample_size` samples and prints the mean
//! wall-clock time per iteration.  No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a computation whose result is unused.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean time per iteration of the last `iter` call.
    last_mean: Duration,
}

impl Bencher {
    /// Time `f`, running it `samples` times (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.last_mean = start.elapsed() / self.samples as u32;
    }
}

fn run_one(full_name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last_mean: Duration::ZERO,
    };
    f(&mut b);
    println!("bench {full_name:<60} {:>12.3?}/iter", b.last_mean);
}

/// Top-level benchmark driver (shim).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), self.sample_size, f);
        self
    }

    /// Run one stand-alone benchmark over an input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&id.label, self.sample_size, |b| f(b, input));
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name),
            self.criterion.sample_size,
            f,
        );
        self
    }

    /// Run one benchmark in this group over an input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.criterion.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Define a benchmark-group entry point, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
