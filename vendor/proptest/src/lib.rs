//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest surface this workspace's property tests use:
//! the [`strategy::Strategy`] trait with `prop_map`, range / tuple / `Just` / `any` /
//! `prop_oneof!` / `collection::vec` strategies, and the `proptest!`, `prop_assume!`,
//! `prop_assert!`, `prop_assert_eq!` macros.  Cases are generated from a
//! deterministic per-test seed; there is no shrinking — a failing case panics with
//! the normal assertion message.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Box a strategy for use in [`Union`] (what `prop_oneof!` builds).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; panics if empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() as usize) % self.options.len();
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4)
    );

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// The strategy returned by [`crate::prelude::any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Sizes accepted by [`vec()`]: a fixed count or a range of counts.
    pub trait IntoSizeRange {
        /// Lower and upper bound (inclusive) of the element count.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end.saturating_sub(1))
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.max > self.min {
                self.min + (rng.next_u64() as usize) % (self.max - self.min + 1)
            } else {
                self.min
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic RNG driving case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test name, so every run explores the same
        /// cases (the shim does not shrink, so reproducibility is the debugging aid).
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self { state: h | 1 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545f4914f6cdd1d)
        }
    }

    /// Per-test configuration (`cases` is the only knob the shim honours).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// `any::<T>()` — an arbitrary value of `T`.
    pub fn any<T: crate::strategy::Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any::<T>::default()
    }
}

/// Uniform choice among the listed strategies (all must yield the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Assert inside a property (no shrinking in the shim, so a plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define `#[test]` functions that run a body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @config($config) $($rest)* }
    };
    (@config($config:expr)
     $(#[test] fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @config($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}
