//! Offline stand-in for the `rand` crate: `RngCore` / `SeedableRng` / `Rng` with
//! `gen_range` over integer and float ranges and `gen_bool`.  Determinism (same seed,
//! same stream) is the property the workspace relies on; statistical quality beyond a
//! good 64-bit mixer is not needed here.

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Create a generator seeded from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods on top of [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}
