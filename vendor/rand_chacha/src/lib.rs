//! Offline stand-in for `rand_chacha`.
//!
//! The workspace only needs a *deterministic, seedable* generator; it never depends on
//! the actual ChaCha stream cipher.  `ChaCha8Rng` is therefore implemented as a
//! splitmix64-seeded xorshift-star generator: tiny, fast, and with the same
//! reproducibility contract (identical seeds yield identical streams).

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (API-compatible stand-in for ChaCha8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    state: u64,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Run the seed through splitmix64 once so that small consecutive seeds
        // (0, 1, 2, ...) still produce well-separated streams.
        let mut s = seed.wrapping_add(0x9e3779b97f4a7c15);
        s = (s ^ (s >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        s = (s ^ (s >> 27)).wrapping_mul(0x94d049bb133111eb);
        Self {
            state: (s ^ (s >> 31)) | 1,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xorshift64* — passes the "looks random enough for synthetic workloads" bar
        // and never returns the all-zero fixed point because the seed is forced odd.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_and_bools_are_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(4usize..10);
            assert!((4..10).contains(&v));
            let w = rng.gen_range(5u64..=6);
            assert!((5..=6).contains(&w));
            let _ = rng.gen_bool(0.3);
        }
    }
}
