//! Offline stand-in for `rayon`.
//!
//! The build environment has no network access, so this shim provides the
//! parallel-iterator entry points the workspace calls (`par_iter`,
//! `into_par_iter`) as *sequential* iterators.  The experiment runner's per-loop
//! scheduling jobs are independent either way; swapping the real rayon back in is a
//! one-line Cargo.toml change once a registry is reachable.

/// Drop-in for `rayon::prelude`.
pub mod prelude {
    /// `.par_iter()` on collections — sequential fallback.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type (a plain sequential iterator in this shim).
        type Iter: Iterator;
        /// Iterate by reference; in real rayon this is a parallel iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `.into_par_iter()` on owned collections — sequential fallback.
    pub trait IntoParallelIterator {
        /// The iterator type.
        type Iter: Iterator;
        /// Consume `self` into an iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<T> IntoParallelIterator for std::ops::Range<T>
    where
        std::ops::Range<T>: Iterator,
    {
        type Iter = std::ops::Range<T>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}
