//! Offline stand-in for `rayon` backed by a real thread pool.
//!
//! The build environment has no registry access, so this crate re-implements the
//! parallel-iterator entry points the workspace uses (`par_iter`, `into_par_iter`,
//! `map`, `collect`) on top of `std::thread::scope`.  Work is handed out in chunks
//! from a shared atomic cursor — idle workers keep claiming the next chunk until the
//! input is exhausted, which gives the same dynamic load balancing that makes rayon
//! effective for the experiment runner's very unevenly sized scheduling jobs.
//!
//! `collect` preserves input order regardless of which worker produced which chunk.
//! The worker count defaults to the number of available cores and can be pinned with
//! the `RAYON_NUM_THREADS` environment variable (`1` recovers the old sequential
//! behaviour exactly).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

std::thread_local! {
    /// Whether the current thread *is* a pool worker.  Real rayon runs nested
    /// `par_iter` calls on the same pool; this shim gets the same effect (and avoids
    /// spawning `threads²` OS threads when a parallel job itself calls `par_iter`,
    /// as the sweep runner's cells do) by running nested calls sequentially on the
    /// worker they occur on — the outer level already keeps every core busy.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads a parallel call will use.
///
/// Reads `RAYON_NUM_THREADS` (any value ≥ 1) and falls back to
/// [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// How many chunks each worker should expect to claim, on average.  More chunks give
/// better load balancing for skewed job sizes at the cost of a little synchronisation.
const CHUNKS_PER_THREAD: usize = 8;

/// Run `f` over `n` indices in parallel, in chunks, collecting the results in index
/// order.  This is the single driver every parallel iterator bottoms out in.
fn drive<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads().min(n);
    if threads <= 1 || IN_POOL.with(|flag| flag.get()) {
        return (0..n).map(f).collect();
    }
    let chunk = (n / (threads * CHUNKS_PER_THREAD)).max(1);
    let cursor = AtomicUsize::new(0);
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                IN_POOL.with(|flag| flag.set(true));
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    let out: Vec<R> = (start..end).map(&f).collect();
                    parts.lock().unwrap().push((start, out));
                }
            });
        }
    });
    let mut parts = parts.into_inner().unwrap();
    parts.sort_unstable_by_key(|(start, _)| *start);
    let mut results = Vec::with_capacity(n);
    for (_, mut part) in parts {
        results.append(&mut part);
    }
    results
}

/// The parallel-iterator surface: `map` to build a pipeline, `collect` / `for_each` /
/// `reduce`-style terminals to run it on the pool.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Terminal driver: apply `f` to every element on the pool, in input order.
    ///
    /// This is an implementation detail of the shim (real rayon drives consumers
    /// through `plumbing`), but it has to be public so adapters can compose.
    fn exec<R: Send>(self, f: &(dyn Fn(Self::Item) -> R + Sync)) -> Vec<R>;

    /// Transform every element with `f` (runs on the pool at the terminal call).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Execute the pipeline and collect the results in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.exec(&|x| x).into_iter().collect()
    }

    /// Execute the pipeline for its side effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        self.exec(&|x| {
            f(x);
        });
    }
}

/// The result of [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, T, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    T: Send,
    F: Fn(I::Item) -> T + Sync,
{
    type Item = T;
    fn exec<R: Send>(self, g: &(dyn Fn(T) -> R + Sync)) -> Vec<R> {
        let f = self.f;
        self.base.exec(&move |x| g(f(x)))
    }
}

/// Borrowing parallel iterator over a slice.
pub struct SliceParIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for SliceParIter<'data, T> {
    type Item = &'data T;
    fn exec<R: Send>(self, f: &(dyn Fn(&'data T) -> R + Sync)) -> Vec<R> {
        let slice = self.slice;
        drive(slice.len(), |i| f(&slice[i]))
    }
}

/// Owning parallel iterator over a `Vec`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn exec<R: Send>(self, f: &(dyn Fn(T) -> R + Sync)) -> Vec<R> {
        // Moving items out of the Vec from several workers needs per-slot interior
        // mutability; a Mutex<Option<T>> per slot keeps this safe and the lock is
        // uncontended (every index is claimed exactly once).
        let cells: Vec<Mutex<Option<T>>> = self
            .items
            .into_iter()
            .map(|x| Mutex::new(Some(x)))
            .collect();
        drive(cells.len(), |i| {
            let item = cells[i].lock().unwrap().take().expect("slot taken twice");
            f(item)
        })
    }
}

/// Drop-in for `rayon::prelude`.
pub mod prelude {
    pub use crate::{Map, ParallelIterator};

    /// `.par_iter()` on collections.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowing parallel iterator type.
        type Iter: ParallelIterator;
        /// Iterate by reference, in parallel.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = crate::SliceParIter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            crate::SliceParIter { slice: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = crate::SliceParIter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            crate::SliceParIter { slice: self }
        }
    }

    /// `.into_par_iter()` on owned collections.
    pub trait IntoParallelIterator {
        /// The owning parallel iterator type.
        type Iter: ParallelIterator;
        /// Consume `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = crate::VecParIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            crate::VecParIter { items: self }
        }
    }

    impl<T> IntoParallelIterator for std::ops::Range<T>
    where
        std::ops::Range<T>: Iterator,
        <std::ops::Range<T> as Iterator>::Item: Send,
    {
        type Iter = crate::VecParIter<<std::ops::Range<T> as Iterator>::Item>;
        fn into_par_iter(self) -> Self::Iter {
            crate::VecParIter {
                items: self.collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        let expected: Vec<u64> = (0..1000).map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn into_par_iter_moves_items() {
        let input: Vec<String> = (0..100).map(|i| format!("s{i}")).collect();
        let out: Vec<usize> = input.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 100);
        assert_eq!(out[0], 2);
        assert_eq!(out[10], 3);
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (0usize..50).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_is_balanced_across_chunks() {
        // Jobs with wildly different costs still come back in order.
        let input: Vec<u64> = (0..200).collect();
        let out: Vec<u64> = input
            .par_iter()
            .map(|&x| {
                let spins = if x % 17 == 0 { 20_000 } else { 10 };
                let mut acc = x;
                for i in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                // Return something order-dependent but deterministic.
                let _ = acc;
                x
            })
            .collect();
        assert_eq!(out, input);
    }

    #[test]
    fn num_threads_is_at_least_one() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn nested_parallel_calls_run_inline_and_preserve_order() {
        // A nested par_iter inside a pool worker must not spawn a second level of
        // threads, and the combined result must still come back in input order.
        let outer: Vec<u64> = (0..64).collect();
        let out: Vec<Vec<u64>> = outer
            .par_iter()
            .map(|&x| {
                let inner: Vec<u64> = (0..8u64).collect();
                inner.par_iter().map(|&y| x * 10 + y).collect()
            })
            .collect();
        for (x, row) in out.iter().enumerate() {
            let expected: Vec<u64> = (0..8).map(|y| x as u64 * 10 + y).collect();
            assert_eq!(row, &expected);
        }
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        let input: Vec<u32> = (0..321).collect();
        input.par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 321);
    }
}
