//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors a minimal
//! serde-compatible surface: the `Serialize` / `Deserialize` traits (routed through a
//! self-describing [`Value`] tree rather than serde's visitor machinery) and the
//! matching derive macros from the sibling `serde_derive` shim.  The public names
//! mirror real serde closely enough that every `use serde::{Deserialize, Serialize}`
//! and `#[derive(Serialize, Deserialize)]` in this repository compiles unchanged, and
//! the `serde_json` shim round-trips derived types faithfully.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A self-describing serialized value (the shim's "data model").
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (array / tuple / tuple struct).
    Seq(Vec<Value>),
    /// Map with string keys (struct / map / enum with payload).
    Map(Vec<(String, Value)>),
}

/// Serialize into the shim's [`Value`] data model.
pub trait Serialize {
    /// Convert `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialize from the shim's [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, String>;
}

/// Look up a struct field in a serialized map (used by derived impls).
pub fn __get<'a>(map: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{key}`"))
}

macro_rules! impl_int {
    ($($t:ty => $var:ident as $as:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::$var(*self as $as) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::F64(n) => Ok(*n as $t),
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}

impl_int!(
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64
);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(format!("expected single-char string, got {other:?}")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(format!("expected sequence, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, String> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|got| format!("expected {N} elements, got {got:?}"))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = stringify!($t);
                            $t::from_value(it.next().ok_or("tuple too short")?)?
                        },)+))
                    }
                    other => Err(format!("expected sequence, got {other:?}")),
                }
            }
        }
    )*};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(format!("expected map, got {other:?}")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(format!("expected map, got {other:?}")),
        }
    }
}
