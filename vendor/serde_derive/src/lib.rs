//! Offline stand-in for `serde_derive`.
//!
//! Because the build environment has no network access, `syn`/`quote` are not
//! available; this crate parses the derive input by walking the raw
//! [`proc_macro::TokenStream`].  It supports exactly the shapes used in this
//! workspace: non-generic structs (named, tuple, unit) and enums whose variants are
//! unit, tuple or struct-like.  Generics and `#[serde(...)]` attributes are
//! deliberately rejected.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Body {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

enum Input {
    Struct {
        name: String,
        body: Body,
    },
    Enum {
        name: String,
        variants: Vec<(String, Body)>,
    },
}

/// Skip any number of outer attributes (`#[...]`, including doc comments) and a
/// visibility qualifier (`pub`, `pub(crate)`, ...) at the current position.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracketed group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parse the fields of a braced (named-field) body: `{ [attrs] [vis] name: Ty, ... }`.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(name);
    }
    fields
}

/// Count the fields of a parenthesised (tuple) body.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma does not add a field.
    if let Some(TokenTree::Punct(p)) = tokens.last() {
        if p.as_char() == ',' && depth == 0 {
            count -= 1;
        }
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<(String, Body)> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Body::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Body::Tuple(count_tuple_fields(g))
            }
            _ => Body::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((name, body));
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }
    match kind.as_str() {
        "struct" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_tuple_fields(g))
                }
                _ => Body::Unit,
            };
            Input::Struct { name, body }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => parse_variants(g),
                other => panic!("serde shim derive: expected enum body, got {other:?}"),
            };
            Input::Enum { name, variants }
        }
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Serialization expression for one payload, plus the matching pattern.
fn variant_arms(name: &str, variants: &[(String, Body)], ser: bool) -> String {
    let mut out = String::new();
    for (vname, body) in variants {
        match body {
            Body::Unit => {
                if ser {
                    out.push_str(&format!(
                        "{name}::{vname} => serde::Value::Str(\"{vname}\".to_string()),\n"
                    ));
                }
            }
            Body::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                let pat = binds.join(", ");
                if ser {
                    let payload = if *n == 1 {
                        "serde::Serialize::to_value(__f0)".to_string()
                    } else {
                        format!(
                            "serde::Value::Seq(vec![{}])",
                            binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    };
                    out.push_str(&format!(
                        "{name}::{vname}({pat}) => serde::Value::Map(vec![(\"{vname}\".to_string(), {payload})]),\n"
                    ));
                }
            }
            Body::Named(fields) => {
                if ser {
                    let pat = fields.join(", ");
                    let entries = fields
                        .iter()
                        .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value({f}))"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    out.push_str(&format!(
                        "{name}::{vname} {{ {pat} }} => serde::Value::Map(vec![(\"{vname}\".to_string(), serde::Value::Map(vec![{entries}]))]),\n"
                    ));
                }
            }
        }
    }
    out
}

fn derive_serialize_impl(input: Input) -> String {
    match input {
        Input::Struct { name, body } => {
            let expr = match body {
                Body::Named(fields) => {
                    let entries = fields
                        .iter()
                        .map(|f| {
                            format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))")
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("serde::Value::Map(vec![{entries}])")
                }
                Body::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Body::Tuple(n) => {
                    let items = (0..n)
                        .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("serde::Value::Seq(vec![{items}])")
                }
                Body::Unit => "serde::Value::Null".to_string(),
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ {expr} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms = variant_arms(&name, &variants, true);
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

fn derive_deserialize_impl(input: Input) -> String {
    match input {
        Input::Struct { name, body } => {
            let body_code = match body {
                Body::Named(fields) => {
                    let inits = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: serde::Deserialize::from_value(serde::__get(__m, \"{f}\")?)?"
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "match __v {{\n\
                             serde::Value::Map(__m) => Ok({name} {{ {inits} }}),\n\
                             __other => Err(format!(\"expected map for {name}, got {{__other:?}}\")),\n\
                         }}"
                    )
                }
                Body::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
                }
                Body::Tuple(n) => {
                    let inits = (0..n)
                        .map(|k| {
                            format!(
                                "serde::Deserialize::from_value(__items.get({k}).ok_or(\"tuple struct too short\")?)?"
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "match __v {{\n\
                             serde::Value::Seq(__items) => Ok({name}({inits})),\n\
                             __other => Err(format!(\"expected sequence for {name}, got {{__other:?}}\")),\n\
                         }}"
                    )
                }
                Body::Unit => format!("{{ let _ = __v; Ok({name}) }}"),
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, String> {{ {body_code} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for (vname, body) in &variants {
                match body {
                    Body::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                    }
                    Body::Tuple(1) => {
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname}(serde::Deserialize::from_value(__payload)?)),\n"
                        ));
                    }
                    Body::Tuple(n) => {
                        let inits = (0..*n)
                            .map(|k| {
                                format!(
                                    "serde::Deserialize::from_value(__items.get({k}).ok_or(\"variant payload too short\")?)?"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => match __payload {{\n\
                                 serde::Value::Seq(__items) => Ok({name}::{vname}({inits})),\n\
                                 __other => Err(format!(\"expected sequence payload for {name}::{vname}, got {{__other:?}}\")),\n\
                             }},\n"
                        ));
                    }
                    Body::Named(fields) => {
                        let inits = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(serde::__get(__m, \"{f}\")?)?"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => match __payload {{\n\
                                 serde::Value::Map(__m) => Ok({name}::{vname} {{ {inits} }}),\n\
                                 __other => Err(format!(\"expected map payload for {name}::{vname}, got {{__other:?}}\")),\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, String> {{\n\
                         match __v {{\n\
                             serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => Err(format!(\"unknown variant `{{__other}}` for {name}\")),\n\
                             }},\n\
                             serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                                 let (__tag, __payload) = &__m[0];\n\
                                 match __tag.as_str() {{\n\
                                     {payload_arms}\n\
                                     __other => Err(format!(\"unknown variant `{{__other}}` for {name}\")),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(format!(\"expected variant for {name}, got {{__other:?}}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Derive the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive_serialize_impl(parse_input(input)).parse().unwrap()
}

/// Derive the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive_deserialize_impl(parse_input(input)).parse().unwrap()
}
