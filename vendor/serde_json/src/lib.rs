//! Offline stand-in for `serde_json`: renders the serde shim's [`serde::Value`] tree
//! to JSON text (`to_string`, `to_string_pretty`) and parses JSON back
//! (`from_str`).  Only the surface used by this workspace is provided.

use serde::{Deserialize, Serialize, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

impl From<String> for Error {
    fn from(s: String) -> Self {
        Error(s)
    }
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(Error)
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * level),
            " ".repeat(w * (level + 1)),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // Keep integral floats distinguishable from integers, as serde_json does.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{n:.1}"));
                } else {
                    out.push_str(&n.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push_str(colon);
                write_value(out, val, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error(format!("bad literal at offset {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}
